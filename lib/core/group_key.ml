module State = X3_lattice.State
module Witness = X3_pattern.Witness
module Dict = Witness.Dict

(* --- legacy string keys ------------------------------------------------- *)
(* Components encoded as [u16 length | bytes]. This codec remains the
   external boundary (export, pivot, tests): the algorithms group on the
   packed integer keys below and decode through the dictionaries only when
   a result leaves the engine. *)

let encode parts =
  let buf = Buffer.create 32 in
  List.iter
    (fun part ->
      let n = String.length part in
      if n > 0xFFFF then invalid_arg "Group_key.encode: component too long";
      Buffer.add_char buf (Char.chr (n land 0xFF));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
      Buffer.add_string buf part)
    parts;
  Buffer.contents buf

let decode key =
  let len = String.length key in
  let rec go pos acc =
    if pos = len then List.rev acc
    else if pos + 2 > len then invalid_arg "Group_key.decode: truncated"
    else begin
      let n = Char.code key.[pos] lor (Char.code key.[pos + 1] lsl 8) in
      if pos + 2 + n > len then invalid_arg "Group_key.decode: truncated";
      go (pos + 2 + n) (String.sub key (pos + 2) n :: acc)
    end
  in
  go 0 []

let project_strings ~from_ ~to_ key =
  let parts = decode key in
  let kept = ref [] in
  let rest = ref parts in
  Array.iteri
    (fun ai from_state ->
      match from_state with
      | State.Removed -> ()
      | State.Present _ -> (
          match !rest with
          | part :: tail ->
              rest := tail;
              (match to_.(ai) with
              | State.Removed -> ()
              | State.Present _ -> kept := part :: !kept)
          | [] -> invalid_arg "Group_key.project_strings: key too short"))
    from_;
  encode (List.rev !kept)

let pp ppf key =
  Format.fprintf ppf "(%s)" (String.concat ", " (decode key))

(* --- packed integer keys ------------------------------------------------ *)
(* Per-axis dictionary ids packed into bit fields of one tagged int when the
   widths fit, with an int-array fallback otherwise. An axis whose
   dictionary holds [n] values needs [bits_for n] bits; fields of axes a
   cuboid removes are zero, so projection to a coarser cuboid is a single
   mask (packed) or entry-zeroing pass (wide). *)

type t = Packed of int | Wide of int array

type layout = {
  widths : int array;  (** bits per axis *)
  offsets : int array;  (** bit offset of each axis's field *)
  total_bits : int;
  packed_fits : bool;  (** do all fields fit one OCaml int? *)
}

(* Bits to hold every id of a dictionary of [n] values (0 .. n-1). *)
let bits_for n =
  if n < 0 then invalid_arg "Group_key.bits_for: negative size";
  let rec go bits cap = if cap >= n then bits else go (bits + 1) (cap * 2) in
  go 0 1

(* 62 rather than 63: keeps every packed key strictly below [max_int], so
   the sign bit never flips and the sortable big-endian form stays
   order-consistent. *)
let packed_bit_budget = 62

let layout_of_sizes sizes =
  let k = Array.length sizes in
  let widths = Array.map bits_for sizes in
  let offsets = Array.make k 0 in
  let total = ref 0 in
  for ai = 0 to k - 1 do
    offsets.(ai) <- !total;
    total := !total + widths.(ai)
  done;
  {
    widths;
    offsets;
    total_bits = !total;
    packed_fits = !total <= packed_bit_budget;
  }

let layout_of_table table = layout_of_sizes (Witness.dict_sizes table)

let axis_count layout = Array.length layout.widths

let field_mask layout ai =
  ((1 lsl layout.widths.(ai)) - 1) lsl layout.offsets.(ai)

(* --- scratch: the allocation-free row -> key path ----------------------- *)

type scratch = {
  s_layout : layout;
  mutable s_packed : int;
  s_wide : int array;  (** reused between loads; copied on freeze *)
}

let make_scratch layout =
  { s_layout = layout; s_packed = 0; s_wide = Array.make (axis_count layout) 0 }

let bad_row () = invalid_arg "Group_key.load: row does not qualify"

let load scratch cuboid (row : Witness.row) =
  let layout = scratch.s_layout in
  let cells = row.Witness.cells in
  if layout.packed_fits then begin
    let k = Array.length cuboid in
    let rec go ai acc =
      if ai >= k then acc
      else
        match cuboid.(ai) with
        | State.Removed -> go (ai + 1) acc
        | State.Present _ ->
            let id = cells.(ai).Witness.id in
            if id < 0 then bad_row ();
            go (ai + 1) (acc lor (id lsl layout.offsets.(ai)))
    in
    scratch.s_packed <- go 0 0
  end
  else begin
    let wide = scratch.s_wide in
    Array.iteri
      (fun ai state ->
        match state with
        | State.Removed -> wide.(ai) <- 0
        | State.Present _ ->
            let id = cells.(ai).Witness.id in
            if id < 0 then bad_row ();
            wide.(ai) <- id)
      cuboid
  end

(* The columnar twin of [load]: ids come straight from the id columns. *)
let load_cols scratch cuboid cols ~row =
  let layout = scratch.s_layout in
  if layout.packed_fits then begin
    let k = Array.length cuboid in
    let rec go ai acc =
      if ai >= k then acc
      else
        match cuboid.(ai) with
        | State.Removed -> go (ai + 1) acc
        | State.Present _ ->
            let id = Witness.Columnar.id cols ~axis:ai ~row in
            if id < 0 then bad_row ();
            go (ai + 1) (acc lor (id lsl layout.offsets.(ai)))
    in
    scratch.s_packed <- go 0 0
  end
  else begin
    let wide = scratch.s_wide in
    Array.iteri
      (fun ai state ->
        match state with
        | State.Removed -> wide.(ai) <- 0
        | State.Present _ ->
            let id = Witness.Columnar.id cols ~axis:ai ~row in
            if id < 0 then bad_row ();
            wide.(ai) <- id)
      cuboid
  end

let freeze scratch =
  if scratch.s_layout.packed_fits then Packed scratch.s_packed
  else Wide (Array.copy scratch.s_wide)

(* --- building and inspecting keys directly ------------------------------ *)

let of_axis_ids layout cuboid ids =
  if layout.packed_fits then begin
    let acc = ref 0 in
    Array.iteri
      (fun ai state ->
        match state with
        | State.Removed -> ()
        | State.Present _ ->
            if ids.(ai) < 0 then bad_row ();
            acc := !acc lor (ids.(ai) lsl layout.offsets.(ai)))
      cuboid;
    Packed !acc
  end
  else
    Wide
      (Array.mapi
         (fun ai state ->
           match state with
           | State.Removed -> 0
           | State.Present _ ->
               if ids.(ai) < 0 then bad_row ();
               ids.(ai))
         cuboid)

let id_at layout key ~axis =
  match key with
  | Packed p -> (p lsr layout.offsets.(axis)) land ((1 lsl layout.widths.(axis)) - 1)
  | Wide w -> w.(axis)

let project layout ~to_ key =
  match key with
  | Packed p ->
      let mask = ref 0 in
      Array.iteri
        (fun ai state ->
          match state with
          | State.Removed -> ()
          | State.Present _ -> mask := !mask lor field_mask layout ai)
        to_;
      Packed (p land !mask)
  | Wide w ->
      Wide
        (Array.mapi
           (fun ai v ->
             match to_.(ai) with State.Removed -> 0 | State.Present _ -> v)
           w)

(* --- the dictionary boundary -------------------------------------------- *)

let of_parts layout ~dicts cuboid parts =
  let k = Array.length cuboid in
  let ids = Array.make k 0 in
  let rec go ai parts =
    if ai >= k then match parts with [] -> true | _ :: _ -> false
    else
      match cuboid.(ai) with
      | State.Removed -> go (ai + 1) parts
      | State.Present _ -> (
          match parts with
          | [] -> false
          | part :: rest -> (
              match Dict.find dicts.(ai) part with
              | None -> raise Exit
              | Some id ->
                  ids.(ai) <- id;
                  go (ai + 1) rest))
  in
  match go 0 parts with
  | true -> Some (of_axis_ids layout cuboid ids)
  | false -> invalid_arg "Group_key.of_parts: arity mismatch"
  | exception Exit -> None

let to_parts layout ~dicts cuboid key =
  let parts = ref [] in
  for ai = Array.length cuboid - 1 downto 0 do
    match cuboid.(ai) with
    | State.Removed -> ()
    | State.Present _ ->
        parts := Dict.value dicts.(ai) (id_at layout key ~axis:ai) :: !parts
  done;
  !parts

(* --- order-agnostic serialisation for external sort --------------------- *)
(* Big-endian fixed-width bytes: [String.compare] over sortable forms is a
   total order that groups equal keys — all the sort-based algorithm
   needs. *)

let to_sortable key =
  match key with
  | Packed p ->
      let b = Bytes.create 9 in
      Bytes.set b 0 '\000';
      for i = 0 to 7 do
        Bytes.set b (1 + i) (Char.chr ((p lsr (8 * (7 - i))) land 0xFF))
      done;
      Bytes.unsafe_to_string b
  | Wide w ->
      let k = Array.length w in
      let b = Bytes.create (1 + (4 * k)) in
      Bytes.set b 0 '\001';
      Array.iteri
        (fun ai v ->
          let base = 1 + (4 * ai) in
          Bytes.set b base (Char.chr ((v lsr 24) land 0xFF));
          Bytes.set b (base + 1) (Char.chr ((v lsr 16) land 0xFF));
          Bytes.set b (base + 2) (Char.chr ((v lsr 8) land 0xFF));
          Bytes.set b (base + 3) (Char.chr (v land 0xFF)))
        w;
      Bytes.unsafe_to_string b

let of_sortable layout s =
  if String.length s = 0 then invalid_arg "Group_key.of_sortable: empty";
  match s.[0] with
  | '\000' ->
      if String.length s <> 9 then
        invalid_arg "Group_key.of_sortable: bad packed length";
      let p = ref 0 in
      for i = 1 to 8 do
        p := (!p lsl 8) lor Char.code s.[i]
      done;
      Packed !p
  | '\001' ->
      let k = axis_count layout in
      if String.length s <> 1 + (4 * k) then
        invalid_arg "Group_key.of_sortable: bad wide length";
      Wide
        (Array.init k (fun ai ->
             let base = 1 + (4 * ai) in
             (Char.code s.[base] lsl 24)
             lor (Char.code s.[base + 1] lsl 16)
             lor (Char.code s.[base + 2] lsl 8)
             lor Char.code s.[base + 3]))
  | _ -> invalid_arg "Group_key.of_sortable: bad tag"

(* --- key order, hashing ------------------------------------------------- *)

let compare a b =
  match (a, b) with
  | Packed p, Packed q -> Int.compare p q
  | Wide u, Wide v ->
      let rec go i =
        if i >= Array.length u then 0
        else
          let c = Int.compare u.(i) v.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
  | Packed _, Wide _ -> -1
  | Wide _, Packed _ -> 1

let equal a b =
  match (a, b) with
  | Packed p, Packed q -> p = q
  | Wide u, Wide v ->
      let n = Array.length u in
      n = Array.length v
      &&
      let rec go i = i >= n || (u.(i) = v.(i) && go (i + 1)) in
      go 0
  | _ -> false

(* Splitmix-style finaliser: full avalanche, never negative. *)
let mix x =
  let x = x lxor (x lsr 31) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  x land max_int

let hash_wide w = Array.fold_left (fun acc v -> mix (acc lxor v)) 0x9E3779B9 w

let hash = function Packed p -> mix p | Wide w -> hash_wide w

let scratch_hash scratch =
  if scratch.s_layout.packed_fits then mix scratch.s_packed
  else hash_wide scratch.s_wide

let scratch_equal scratch key =
  match key with
  | Packed p -> scratch.s_layout.packed_fits && p = scratch.s_packed
  | Wide w ->
      (not scratch.s_layout.packed_fits)
      &&
      let u = scratch.s_wide in
      let rec go i = i >= Array.length w || (w.(i) = u.(i) && go (i + 1)) in
      go 0

(* --- specialised open-addressing table over keys ------------------------ *)
(* Linear probing over a power-of-two slot array. Lookups can be keyed by a
   [scratch] directly, so the hot row -> group path never allocates a key
   for groups already seen. *)

module Tbl = struct
  type key = t
  type 'a slot = Free | Used of { key : key; mutable value : 'a }
  type 'a t = { mutable slots : 'a slot array; mutable size : int }

  let create capacity =
    let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
    { slots = Array.make (pow2 8) Free; size = 0 }

  let length t = t.size

  let index_of_key slots key =
    let mask = Array.length slots - 1 in
    let rec probe i =
      match slots.(i) with
      | Free -> i
      | Used u -> if equal u.key key then i else probe ((i + 1) land mask)
    in
    probe (hash key land mask)

  let grow t =
    let old = t.slots in
    let slots = Array.make (2 * Array.length old) Free in
    Array.iter
      (function
        | Free -> ()
        | Used u as slot -> slots.(index_of_key slots u.key) <- slot)
      old;
    t.slots <- slots

  let maybe_grow t =
    if 4 * t.size > 3 * Array.length t.slots then grow t

  let find_opt t key =
    match t.slots.(index_of_key t.slots key) with
    | Free -> None
    | Used u -> Some u.value

  let replace t key value =
    match t.slots.(index_of_key t.slots key) with
    | Used u -> u.value <- value
    | Free ->
        maybe_grow t;
        let i = index_of_key t.slots key in
        t.slots.(i) <- Used { key; value };
        t.size <- t.size + 1

  let index_of_scratch slots scratch =
    let mask = Array.length slots - 1 in
    let rec probe i =
      match slots.(i) with
      | Free -> i
      | Used u -> if scratch_equal scratch u.key then i else probe ((i + 1) land mask)
    in
    probe (scratch_hash scratch land mask)

  let find_scratch t scratch =
    match t.slots.(index_of_scratch t.slots scratch) with
    | Free -> None
    | Used u -> Some u.value

  let find_or_add t scratch ~default =
    match t.slots.(index_of_scratch t.slots scratch) with
    | Used u -> u.value
    | Free ->
        maybe_grow t;
        let i = index_of_scratch t.slots scratch in
        let value = default () in
        t.slots.(i) <- Used { key = freeze scratch; value };
        t.size <- t.size + 1;
        value

  let iter f t =
    Array.iter (function Free -> () | Used u -> f u.key u.value) t.slots

  let fold f t init =
    Array.fold_left
      (fun acc -> function Free -> acc | Used u -> f u.key u.value acc)
      init t.slots
end

(* --- generation-stamped membership set ---------------------------------- *)
(* Per-fact-block deduplication: [reset] is a generation bump, so clearing
   between the thousands of tiny blocks costs nothing. Stamped entries are
   only a cache (after a bump every entry is stale), so the table must not
   be allowed to accumulate every distinct key a long scan ever saw:
   [reset] rebuilds it small once stale entries dominate the widest
   generation observed. *)

module Seen = struct
  type t = {
    mutable tbl : int ref Tbl.t;
    mutable gen : int;
    mutable live : int;  (** distinct keys added this generation *)
    mutable high_water : int;  (** widest generation since last compaction *)
  }

  let compaction_slack = 8

  let create () = { tbl = Tbl.create 16; gen = 1; live = 0; high_water = 0 }

  let table_size t = Tbl.length t.tbl

  let reset t =
    if t.live > t.high_water then t.high_water <- t.live;
    if Tbl.length t.tbl > compaction_slack * max 16 t.high_water then begin
      (* Stale entries dominate: drop the cache rather than let the dedup
         set grow with total distinct keys ever seen. The high-water mark
         restarts so one early wide block cannot pin a large table
         forever. *)
      t.tbl <- Tbl.create 16;
      t.high_water <- t.live;
      t.gen <- 0
    end;
    t.live <- 0;
    t.gen <- t.gen + 1

  let add t scratch =
    let stamp = Tbl.find_or_add t.tbl scratch ~default:(fun () -> ref 0) in
    if !stamp = t.gen then false
    else begin
      stamp := t.gen;
      t.live <- t.live + 1;
      true
    end
end
