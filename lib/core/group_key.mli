(** Group keys.

    A group within a cuboid is identified by the values of the cuboid's
    present axes, in axis order. Since the witness table dictionary-encodes
    its dimension values, a group key is the tuple of per-axis dictionary
    ids — packed into the bit fields of a single tagged int when the axis
    widths fit ({!layout.packed_fits}), or an int array otherwise. The
    algorithms build keys through a reusable {!scratch} (allocation-free
    for already-seen groups), hash them with the specialised {!Tbl}, and
    re-key between cuboids with {!project} (a mask on the packed form).

    The legacy length-prefixed string codec ({!encode} / {!decode}) remains
    the external boundary: export, pivot and the test suite exchange keys
    as encoded value lists, which [Cube_result] maps onto coded keys via
    the dictionaries ({!of_parts} / {!to_parts}). *)

(** {1 Legacy string keys — the export boundary} *)

val encode : string list -> string
(** Length-prefixed components ([u16 length | bytes] each). Raises
    [Invalid_argument] when a component exceeds 65535 bytes — the coded
    path has no such ceiling (dictionary values are 32-bit length). *)

val decode : string -> string list
(** Raises [Invalid_argument] on malformed input. *)

val project_strings :
  from_:X3_lattice.Cuboid.t -> to_:X3_lattice.Cuboid.t -> string -> string
(** Re-key an encoded string key from a finer cuboid to a coarser one by
    dropping the components of axes that the coarser cuboid removes. [to_]
    must be at least as relaxed as [from_] axis-by-axis. *)

val pp : Format.formatter -> string -> unit
(** Renders the decoded components, e.g. [(John, p1, 2003)]. *)

(** {1 Packed integer keys — the algorithms' working form} *)

type t = Packed of int | Wide of int array
(** [Packed] when every axis field fits the 62-bit budget; [Wide] holds one
    id per axis (0 at removed axes). Keys of the same table and cuboid
    always share a constructor, so mixed comparisons never arise in use. *)

type layout = {
  widths : int array;  (** bits per axis, from the dictionary sizes *)
  offsets : int array;  (** bit offset of each axis's packed field *)
  total_bits : int;
  packed_fits : bool;
}

val layout_of_sizes : int array -> layout
val layout_of_table : X3_pattern.Witness.t -> layout

val bits_for : int -> int
(** Bits needed to hold ids [0 .. n-1]; 0 for empty or singleton
    dictionaries. *)

(** {2 Scratch: the allocation-free row → key path} *)

type scratch

val make_scratch : layout -> scratch

val load : scratch -> X3_lattice.Cuboid.t -> X3_pattern.Witness.row -> unit
(** Assemble the key of [row] under the cuboid into the scratch. Raises
    [Invalid_argument] if a present axis is unbound (the row does not
    qualify). *)

val load_cols :
  scratch ->
  X3_lattice.Cuboid.t ->
  X3_pattern.Witness.Columnar.t ->
  row:int ->
  unit
(** {!load} over the columnar view: assemble the key of row index [row]
    from the id columns. Same qualification contract as {!load}. *)

val freeze : scratch -> t
(** An immutable key from the scratch's current contents (copies the id
    array in the wide case). *)

(** {2 Keys without rows} *)

val of_axis_ids : layout -> X3_lattice.Cuboid.t -> int array -> t
(** Key from one id per axis (entries at removed axes are ignored). Raises
    [Invalid_argument] on a negative id at a present axis. *)

val id_at : layout -> t -> axis:int -> int
(** The dictionary id stored for [axis] (0 for removed axes). *)

val project : layout -> to_:X3_lattice.Cuboid.t -> t -> t
(** Re-key to a coarser cuboid: zero the fields of axes [to_] removes. A
    bit mask on packed keys. *)

(** {2 The dictionary boundary} *)

val of_parts :
  layout ->
  dicts:X3_pattern.Witness.Dict.t array ->
  X3_lattice.Cuboid.t ->
  string list ->
  t option
(** Coded key of a decoded value list (one string per present axis, axis
    order). [None] when some value is not in its axis dictionary — no group
    with that key exists. Raises [Invalid_argument] on arity mismatch. *)

val to_parts :
  layout ->
  dicts:X3_pattern.Witness.Dict.t array ->
  X3_lattice.Cuboid.t ->
  t ->
  string list
(** Decode back to the present axes' values, in axis order. *)

(** {2 Serialisation for the external sort} *)

val to_sortable : t -> string
(** Fixed-width big-endian form: [String.compare] over sortable forms is a
    total order grouping equal keys — what the sort-based algorithm
    needs. *)

val of_sortable : layout -> string -> t
(** Raises [Invalid_argument] on malformed input. *)

(** {2 Order and hashing} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Specialised hash table over coded keys}

    Open addressing with linear probing over a power-of-two slot array.
    Lookups can be keyed by a {!scratch} directly, so the hot row → group
    path allocates nothing for groups already present. *)

module Tbl : sig
  type key = t
  type 'a t

  val create : int -> 'a t
  val length : 'a t -> int
  val find_opt : 'a t -> key -> 'a option
  val replace : 'a t -> key -> 'a -> unit

  val find_scratch : 'a t -> scratch -> 'a option

  val find_or_add : 'a t -> scratch -> default:(unit -> 'a) -> 'a
  (** The value under the scratch's key, inserting [default ()] (and
      freezing the scratch) on first sight. *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end

(** {1 Generation-stamped membership set}

    Per-fact-block deduplication: {!Seen.reset} is a generation bump, so
    clearing between thousands of tiny blocks costs nothing. Entries from
    past generations are a reuse cache, not members; {!Seen.reset} compacts
    the table once stale entries dominate, so the set's footprint tracks
    the widest single generation rather than every distinct key a long
    scan ever produced. *)

module Seen : sig
  type t

  val create : unit -> t
  val reset : t -> unit

  val add : t -> scratch -> bool
  (** [true] iff the scratch's key was not yet a member this generation;
      always marks it. *)

  val table_size : t -> int
  (** Entries currently cached (all generations) — what compaction
      bounds. *)
end
