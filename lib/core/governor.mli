(** The resource governor: byte-budgeted execution and admission control.

    The paper's top-down family is defined by what "fits in memory", and
    Gray et al. already observed that memory is the binding constraint of
    cube computation. This module makes that constraint explicit: a
    {!t} is a global byte pool shared by every concurrently running query,
    an {!account} is one query's private budget drawn against it, and the
    algorithms request {e reservations} from their account at block,
    refine and pass boundaries (the same checkpoints the deadline/cancel
    machinery uses). Over-budget pressure first forces the spill paths
    (counter eviction, external sort) and only once those floors are hit
    does the run stop with a typed [Over_budget] partial.

    Accounting is estimate-based but conservative and two-sided: every
    reservation is paired with a release, so a long-running session's
    pool usage tracks live structures, not history. The unit costs below
    are the documented cost model — deliberately simple integers so that
    budget arithmetic is deterministic across runs and worker counts.

    {!Admission} is the load-shedding front door: a bounded number of
    queries run at once, a bounded number wait, and everything beyond
    that is rejected immediately with a typed reason instead of grinding
    the whole process into swap. *)

(** {1 Cost model} *)

val counter_cost : int
(** Estimated bytes of one live group counter: the hash-table slot, the
    boxed group key and the aggregate cell. *)

val sort_record_cost : int
(** Estimated bytes of one record resident in an external-sort buffer
    (the encoded record string plus the buffer slot). *)

val sort_floor_records : int
(** The spill floor of the external sort: below this many in-memory
    records a sort cannot make useful progress, so a byte budget that
    cannot cover it is over budget rather than infinitely spilling. *)

val row_cost : axes:int -> int
(** Estimated bytes of one decoded witness row resident in memory (the
    row record, its cell array and the per-axis cells). *)

(** {1 The global pool} *)

type t

val create : ?max_bytes:int -> unit -> t
(** A pool of [max_bytes] (default: unlimited). *)

val limit : t -> int
val used : t -> int
val peak : t -> int

val shed : t -> int
(** Reservations refused because the pool (not the account) was full —
    the pool-level load-shedding counter. *)

(** {1 Per-query accounts} *)

type account

val unbounded : account
(** The no-governor account: every reservation succeeds. [Context]
    defaults to it, so ungoverned runs pay one branch per reservation. *)

val open_account : ?max_bytes:int -> t option -> account
(** An account drawing on the pool (or on nothing when [None]), capped at
    [max_bytes] (default: unlimited). Reservations fail once either the
    account cap or the pool limit would be exceeded. *)

val is_unbounded : account -> bool
(** [true] only for {!unbounded} — lets hot paths skip accounting
    entirely when no budget is in force. *)

val reserve : account -> int -> bool
(** [reserve a n] books [n] more bytes; [false] if the account cap or the
    pool is exhausted (nothing is booked then). Domain-safe. *)

val release : account -> int -> unit
(** Return [n] bytes to the account and the pool. *)

val account_used : account -> int
val account_peak : account -> int

val remaining : account -> int
(** Bytes the account can still reserve — [max_int] when unbounded. The
    spill paths derive their effective in-memory budgets from this. *)

val close : account -> unit
(** Release everything the account still holds back to the pool.
    Idempotent. *)

(** {1 Admission control} *)

module Admission : sig
  type t

  val create : ?max_in_flight:int -> ?max_waiting:int -> unit -> t
  (** At most [max_in_flight] (default 4) queries hold slots at once; at
      most [max_waiting] (default 16) wait for one. *)

  type rejection =
    | Saturated of { in_flight : int; waiting : int }
        (** the wait queue was already full — shed immediately *)
    | Timed_out of { waited : float }
        (** a slot did not free within the caller's patience *)

  val pp_rejection : Format.formatter -> rejection -> unit

  val admit : ?max_wait:float -> t -> (unit, rejection) result
  (** Take a slot, waiting up to [max_wait] seconds (default: as long as
      it takes) while the queue has room. [Error] is the typed shed
      decision. Domain-safe; waiters block on a condition variable (zero
      CPU between wakeups) and are admitted strictly FIFO — a freed slot
      always goes to the longest waiter. Timed waits are enforced by a
      per-door watchdog thread started lazily on the first timed waiter,
      so deadlines hold even though stdlib [Condition] has no timed
      wait. *)

  val release : t -> unit
  (** Give the slot back (must pair with a successful {!admit}). *)

  val in_flight : t -> int
  val waiting : t -> int
  val admitted_total : t -> int
  val rejected_total : t -> int
end
