(* Byte-budgeted execution and admission control.

   The pool and the accounts are plain atomics so worker domains can
   reserve concurrently; admission is a mutex-protected counter pair with
   poll-based waiting (stdlib Condition has no timed wait, and the waits
   here are long relative to a millisecond poll). *)

(* --- cost model --------------------------------------------------------- *)

(* One live counter: a Group_key.Tbl slot (two array entries), a boxed key
   (Packed int or small Wide array) and an Aggregate.cell (4 mutable
   fields + header). Measured with Obj.reachable_words this lands between
   70 and 110 bytes depending on key width; 96 is the documented middle. *)
let counter_cost = 96

(* One sort-buffer record: the encoded record string (key + fact + measure,
   typically 20-40 bytes + string header) plus its buffer slot. *)
let sort_record_cost = 96

let sort_floor_records = 64

(* One decoded row: the row record (2 fields), the cell array and one
   3-field cell record per axis, in 8-byte words. *)
let row_cost ~axes = 8 * (4 + axes + (4 * axes))

(* --- the global pool ---------------------------------------------------- *)

type t = {
  g_limit : int;
  g_used : int Atomic.t;
  g_peak : int Atomic.t;
  g_shed : int Atomic.t;
}

let create ?(max_bytes = max_int) () =
  if max_bytes < 0 then invalid_arg "Governor.create: negative budget";
  {
    g_limit = max_bytes;
    g_used = Atomic.make 0;
    g_peak = Atomic.make 0;
    g_shed = Atomic.make 0;
  }

let limit t = t.g_limit
let used t = Atomic.get t.g_used
let peak t = Atomic.get t.g_peak
let shed t = Atomic.get t.g_shed

let rec bump_peak peak candidate =
  let current = Atomic.get peak in
  if candidate > current then
    if not (Atomic.compare_and_set peak current candidate) then
      bump_peak peak candidate

(* CAS loop: book [n] bytes iff the pool stays within its limit. *)
let rec pool_reserve t n =
  let current = Atomic.get t.g_used in
  if current > t.g_limit - n then begin
    Atomic.incr t.g_shed;
    false
  end
  else if Atomic.compare_and_set t.g_used current (current + n) then begin
    bump_peak t.g_peak (current + n);
    true
  end
  else pool_reserve t n

let pool_release t n = ignore (Atomic.fetch_and_add t.g_used (-n))

(* --- per-query accounts ------------------------------------------------- *)

type account = {
  pool : t option;
  a_limit : int;
  a_used : int Atomic.t;
  a_peak : int Atomic.t;
  a_closed : bool Atomic.t;
}

let make_account pool a_limit =
  {
    pool;
    a_limit;
    a_used = Atomic.make 0;
    a_peak = Atomic.make 0;
    a_closed = Atomic.make false;
  }

let unbounded = make_account None max_int

let open_account ?(max_bytes = max_int) pool =
  if max_bytes < 0 then invalid_arg "Governor.open_account: negative budget";
  make_account pool max_bytes

let is_unbounded a = a.pool = None && a.a_limit = max_int

let rec local_reserve a n =
  let current = Atomic.get a.a_used in
  if current > a.a_limit - n then false
  else if Atomic.compare_and_set a.a_used current (current + n) then begin
    bump_peak a.a_peak (current + n);
    true
  end
  else local_reserve a n

let reserve a n =
  if n <= 0 || is_unbounded a then true
  else if not (local_reserve a n) then false
  else
    match a.pool with
    | None -> true
    | Some pool ->
        if pool_reserve pool n then true
        else begin
          (* Roll the local booking back so the account stays balanced. *)
          ignore (Atomic.fetch_and_add a.a_used (-n));
          false
        end

let release a n =
  if n > 0 && not (is_unbounded a) then begin
    ignore (Atomic.fetch_and_add a.a_used (-n));
    Option.iter (fun pool -> pool_release pool n) a.pool
  end

let account_used a = Atomic.get a.a_used
let account_peak a = Atomic.get a.a_peak

let remaining a =
  if is_unbounded a then max_int
  else begin
    let local = a.a_limit - Atomic.get a.a_used in
    let pool =
      match a.pool with
      | None -> max_int
      | Some p -> p.g_limit - Atomic.get p.g_used
    in
    max 0 (min local pool)
  end

let close a =
  if not (is_unbounded a) && Atomic.compare_and_set a.a_closed false true then begin
    let left = Atomic.exchange a.a_used 0 in
    if left > 0 then Option.iter (fun pool -> pool_release pool left) a.pool
  end

(* --- admission control --------------------------------------------------- *)

module Admission = struct
  type t = {
    max_in_flight : int;
    max_waiting : int;
    lock : Mutex.t;
    mutable in_flight : int;
    mutable waiting : int;
    mutable admitted_total : int;
    mutable rejected_total : int;
  }

  let create ?(max_in_flight = 4) ?(max_waiting = 16) () =
    if max_in_flight < 0 || max_waiting < 0 then
      invalid_arg "Admission.create: negative capacity";
    {
      max_in_flight;
      max_waiting;
      lock = Mutex.create ();
      in_flight = 0;
      waiting = 0;
      admitted_total = 0;
      rejected_total = 0;
    }

  type rejection =
    | Saturated of { in_flight : int; waiting : int }
    | Timed_out of { waited : float }

  let pp_rejection ppf = function
    | Saturated { in_flight; waiting } ->
        Format.fprintf ppf
          "saturated (%d queries in flight, %d already waiting)" in_flight
          waiting
    | Timed_out { waited } ->
        Format.fprintf ppf "no slot freed within %.3fs" waited

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  (* The poll interval bounds how stale a waiter's view can be; a freed
     slot is picked up within ~1 ms, far below any realistic cube run. *)
  let poll_interval = 0.001

  let admit ?max_wait t =
    let started = Unix.gettimeofday () in
    let deadline = Option.map (fun w -> started +. w) max_wait in
    let rec loop ~registered =
      let decision =
        locked t (fun () ->
            if t.in_flight < t.max_in_flight then begin
              t.in_flight <- t.in_flight + 1;
              t.admitted_total <- t.admitted_total + 1;
              if registered then t.waiting <- t.waiting - 1;
              `Admitted
            end
            else if (not registered) && t.waiting >= t.max_waiting then begin
              t.rejected_total <- t.rejected_total + 1;
              `Rejected
                (Saturated { in_flight = t.in_flight; waiting = t.waiting })
            end
            else begin
              if not registered then t.waiting <- t.waiting + 1;
              match deadline with
              | Some d when Unix.gettimeofday () >= d ->
                  t.waiting <- t.waiting - 1;
                  t.rejected_total <- t.rejected_total + 1;
                  `Rejected
                    (Timed_out { waited = Unix.gettimeofday () -. started })
              | _ -> `Wait
            end)
      in
      match decision with
      | `Admitted ->
          X3_obs.Trace.instant "admission.admit"
            ~attrs:
              [ ("waited", X3_obs.Trace.Float (Unix.gettimeofday () -. started)) ];
          Ok ()
      | `Rejected r ->
          X3_obs.Trace.instant "admission.reject"
            ~attrs:
              [
                ( "reason",
                  X3_obs.Trace.Str
                    (match r with
                    | Saturated _ -> "saturated"
                    | Timed_out _ -> "timed_out") );
                ("waited", X3_obs.Trace.Float (Unix.gettimeofday () -. started));
              ];
          Error r
      | `Wait ->
          if not registered then X3_obs.Trace.instant "admission.wait";
          Unix.sleepf poll_interval;
          loop ~registered:true
    in
    loop ~registered:false

  let release t =
    locked t (fun () ->
        if t.in_flight <= 0 then
          invalid_arg "Admission.release: nothing in flight";
        t.in_flight <- t.in_flight - 1)

  let in_flight t = locked t (fun () -> t.in_flight)
  let waiting t = locked t (fun () -> t.waiting)
  let admitted_total t = locked t (fun () -> t.admitted_total)
  let rejected_total t = locked t (fun () -> t.rejected_total)
end
