(* Byte-budgeted execution and admission control.

   The pool and the accounts are plain atomics so worker domains can
   reserve concurrently; admission is a mutex-protected FIFO waiter queue
   over a Condition — waiters block (zero CPU between wakeups) instead of
   polling, which matters once a resident daemon parks many of them.
   stdlib Condition has no timed wait, so deadlines are enforced by one
   lazily started watchdog thread per door that broadcasts around the
   earliest pending deadline and exits as soon as no timed waiter
   remains. *)

(* --- cost model --------------------------------------------------------- *)

(* One live counter: a Group_key.Tbl slot (two array entries), a boxed key
   (Packed int or small Wide array) and an Aggregate.cell (4 mutable
   fields + header). Measured with Obj.reachable_words this lands between
   70 and 110 bytes depending on key width; 96 is the documented middle. *)
let counter_cost = 96

(* One sort-buffer record: the encoded record string (key + fact + measure,
   typically 20-40 bytes + string header) plus its buffer slot. *)
let sort_record_cost = 96

let sort_floor_records = 64

(* One decoded row: the row record (2 fields), the cell array and one
   3-field cell record per axis, in 8-byte words. *)
let row_cost ~axes = 8 * (4 + axes + (4 * axes))

(* --- the global pool ---------------------------------------------------- *)

type t = {
  g_limit : int;
  g_used : int Atomic.t;
  g_peak : int Atomic.t;
  g_shed : int Atomic.t;
}

let create ?(max_bytes = max_int) () =
  if max_bytes < 0 then invalid_arg "Governor.create: negative budget";
  {
    g_limit = max_bytes;
    g_used = Atomic.make 0;
    g_peak = Atomic.make 0;
    g_shed = Atomic.make 0;
  }

let limit t = t.g_limit
let used t = Atomic.get t.g_used
let peak t = Atomic.get t.g_peak
let shed t = Atomic.get t.g_shed

let rec bump_peak peak candidate =
  let current = Atomic.get peak in
  if candidate > current then
    if not (Atomic.compare_and_set peak current candidate) then
      bump_peak peak candidate

(* CAS loop: book [n] bytes iff the pool stays within its limit. *)
let rec pool_reserve t n =
  let current = Atomic.get t.g_used in
  if current > t.g_limit - n then begin
    Atomic.incr t.g_shed;
    false
  end
  else if Atomic.compare_and_set t.g_used current (current + n) then begin
    bump_peak t.g_peak (current + n);
    true
  end
  else pool_reserve t n

let pool_release t n = ignore (Atomic.fetch_and_add t.g_used (-n))

(* --- per-query accounts ------------------------------------------------- *)

type account = {
  pool : t option;
  a_limit : int;
  a_used : int Atomic.t;
  a_peak : int Atomic.t;
  a_closed : bool Atomic.t;
}

let make_account pool a_limit =
  {
    pool;
    a_limit;
    a_used = Atomic.make 0;
    a_peak = Atomic.make 0;
    a_closed = Atomic.make false;
  }

let unbounded = make_account None max_int

let open_account ?(max_bytes = max_int) pool =
  if max_bytes < 0 then invalid_arg "Governor.open_account: negative budget";
  make_account pool max_bytes

let is_unbounded a = a.pool = None && a.a_limit = max_int

let rec local_reserve a n =
  let current = Atomic.get a.a_used in
  if current > a.a_limit - n then false
  else if Atomic.compare_and_set a.a_used current (current + n) then begin
    bump_peak a.a_peak (current + n);
    true
  end
  else local_reserve a n

let reserve a n =
  if n <= 0 || is_unbounded a then true
  else if not (local_reserve a n) then false
  else
    match a.pool with
    | None -> true
    | Some pool ->
        if pool_reserve pool n then true
        else begin
          (* Roll the local booking back so the account stays balanced. *)
          ignore (Atomic.fetch_and_add a.a_used (-n));
          false
        end

let release a n =
  if n > 0 && not (is_unbounded a) then begin
    ignore (Atomic.fetch_and_add a.a_used (-n));
    Option.iter (fun pool -> pool_release pool n) a.pool
  end

let account_used a = Atomic.get a.a_used
let account_peak a = Atomic.get a.a_peak

let remaining a =
  if is_unbounded a then max_int
  else begin
    let local = a.a_limit - Atomic.get a.a_used in
    let pool =
      match a.pool with
      | None -> max_int
      | Some p -> p.g_limit - Atomic.get p.g_used
    in
    max 0 (min local pool)
  end

let close a =
  if not (is_unbounded a) && Atomic.compare_and_set a.a_closed false true then begin
    let left = Atomic.exchange a.a_used 0 in
    if left > 0 then Option.iter (fun pool -> pool_release pool left) a.pool
  end

(* --- admission control --------------------------------------------------- *)

module Admission = struct
  type waiter = {
    w_deadline : float option;  (** absolute, [None] = infinite patience *)
    mutable w_state : [ `Waiting | `Admitted | `Abandoned ];
  }

  type t = {
    max_in_flight : int;
    max_waiting : int;
    lock : Mutex.t;
    slot_freed : Condition.t;
    mutable in_flight : int;
    mutable queue : waiter list;  (** FIFO: head is next to admit *)
    mutable admitted_total : int;
    mutable rejected_total : int;
    mutable watchdog_running : bool;
  }

  let create ?(max_in_flight = 4) ?(max_waiting = 16) () =
    if max_in_flight < 0 || max_waiting < 0 then
      invalid_arg "Admission.create: negative capacity";
    {
      max_in_flight;
      max_waiting;
      lock = Mutex.create ();
      slot_freed = Condition.create ();
      in_flight = 0;
      queue = [];
      admitted_total = 0;
      rejected_total = 0;
      watchdog_running = false;
    }

  type rejection =
    | Saturated of { in_flight : int; waiting : int }
    | Timed_out of { waited : float }

  let pp_rejection ppf = function
    | Saturated { in_flight; waiting } ->
        Format.fprintf ppf
          "saturated (%d queries in flight, %d already waiting)" in_flight
          waiting
    | Timed_out { waited } ->
        Format.fprintf ppf "no slot freed within %.3fs" waited

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  (* Stdlib [Condition] has no timed wait, so timed waiters are woken by a
     watchdog: one thread per door, started lazily when a timed waiter
     blocks, broadcasting at (or slightly before) the earliest pending
     deadline and exiting once no timed waiter remains. The chunk cap
     bounds how late a newly arrived, earlier deadline can be noticed. *)
  let watchdog_chunk = 0.005

  let earliest_deadline t =
    List.fold_left
      (fun acc w ->
        match (w.w_state, w.w_deadline) with
        | `Waiting, Some d -> (
            match acc with Some e -> Some (Float.min e d) | None -> Some d)
        | _ -> acc)
      None t.queue

  let rec watchdog t =
    let next = locked t (fun () -> earliest_deadline t) in
    match next with
    | None ->
        locked t (fun () ->
            (* Re-check under the lock: a timed waiter may have arrived
               between the read and here; if so keep running. *)
            match earliest_deadline t with
            | Some _ -> true
            | None ->
                t.watchdog_running <- false;
                false)
        |> fun keep_going -> if keep_going then watchdog t
    | Some d ->
        let now = Unix.gettimeofday () in
        if d > now then Thread.delay (Float.min (d -. now) watchdog_chunk)
        else begin
          locked t (fun () ->
              (* Deadline reached: wake everyone so expired waiters can
                 deregister themselves. *)
              Condition.broadcast t.slot_freed);
          (* Give the woken waiter a beat to deregister before re-checking,
             so this loop never spins hot against the scheduler. *)
          Thread.delay 0.0002
        end;
        watchdog t

  let ensure_watchdog t =
    (* Called with the lock held. *)
    if not t.watchdog_running then begin
      t.watchdog_running <- true;
      ignore (Thread.create watchdog t)
    end

  (* Head-of-line check. Admission is strictly FIFO: a freed slot goes to
     the longest waiter, and a newcomer may only take a slot directly when
     nobody is queued ahead of it. *)
  let first_live_waiter t =
    List.find_opt (fun w -> w.w_state = `Waiting) t.queue

  let waiting_count t =
    List.length (List.filter (fun w -> w.w_state = `Waiting) t.queue)

  let compact_queue t =
    if List.exists (fun w -> w.w_state <> `Waiting) t.queue then
      t.queue <- List.filter (fun w -> w.w_state = `Waiting) t.queue

  let admit ?max_wait t =
    let started = Unix.gettimeofday () in
    let deadline = Option.map (fun w -> started +. w) max_wait in
    let trace_admit () =
      X3_obs.Trace.instant "admission.admit"
        ~attrs:
          [ ("waited", X3_obs.Trace.Float (Unix.gettimeofday () -. started)) ]
    in
    let trace_reject r =
      X3_obs.Trace.instant "admission.reject"
        ~attrs:
          [
            ( "reason",
              X3_obs.Trace.Str
                (match r with
                | Saturated _ -> "saturated"
                | Timed_out _ -> "timed_out") );
            ("waited", X3_obs.Trace.Float (Unix.gettimeofday () -. started));
          ];
      Error r
    in
    let decision =
      locked t (fun () ->
          if t.in_flight < t.max_in_flight && first_live_waiter t = None then begin
            t.in_flight <- t.in_flight + 1;
            t.admitted_total <- t.admitted_total + 1;
            `Admitted
          end
          else if waiting_count t >= t.max_waiting then begin
            t.rejected_total <- t.rejected_total + 1;
            `Rejected
              (Saturated { in_flight = t.in_flight; waiting = waiting_count t })
          end
          else begin
            match deadline with
            | Some d when Unix.gettimeofday () >= d ->
                (* Zero patience and no free slot: a registration would
                   expire before it could ever block. *)
                t.rejected_total <- t.rejected_total + 1;
                `Rejected
                  (Timed_out { waited = Unix.gettimeofday () -. started })
            | _ ->
                let w = { w_deadline = deadline; w_state = `Waiting } in
                t.queue <- t.queue @ [ w ];
                if deadline <> None then ensure_watchdog t;
                X3_obs.Trace.instant "admission.wait";
                let rec wait_loop () =
                  if
                    t.in_flight < t.max_in_flight
                    &&
                    match first_live_waiter t with
                    | Some head -> head == w
                    | None -> false
                  then begin
                    w.w_state <- `Admitted;
                    compact_queue t;
                    t.in_flight <- t.in_flight + 1;
                    t.admitted_total <- t.admitted_total + 1;
                    (* The next queued waiter may also be admissible (several
                       releases can land before the head wakes). *)
                    Condition.broadcast t.slot_freed;
                    `Admitted
                  end
                  else begin
                    match w.w_deadline with
                    | Some d when Unix.gettimeofday () >= d ->
                        w.w_state <- `Abandoned;
                        compact_queue t;
                        t.rejected_total <- t.rejected_total + 1;
                        (* Abandoning the head seat can unblock the waiter
                           behind it. *)
                        Condition.broadcast t.slot_freed;
                        `Rejected
                          (Timed_out
                             { waited = Unix.gettimeofday () -. started })
                    | _ ->
                        Condition.wait t.slot_freed t.lock;
                        wait_loop ()
                  end
                in
                wait_loop ()
          end)
    in
    match decision with
    | `Admitted ->
        trace_admit ();
        Ok ()
    | `Rejected r -> trace_reject r

  let release t =
    locked t (fun () ->
        if t.in_flight <= 0 then
          invalid_arg "Admission.release: nothing in flight";
        t.in_flight <- t.in_flight - 1;
        Condition.broadcast t.slot_freed)

  let in_flight t = locked t (fun () -> t.in_flight)
  let waiting t = locked t (fun () -> waiting_count t)
  let admitted_total t = locked t (fun () -> t.admitted_total)
  let rejected_total t = locked t (fun () -> t.rejected_total)
end
