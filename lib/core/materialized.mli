(** Materialised intermediate cube results (§3.6).

    "In many cases, we may be better off to materialize some intermediate
    cube results. ... The solution is to accompany intermediate results
    that we will need at a later time with the attributes to be aggregated
    (keeping track of fact items), just as we had to for top down
    computation."

    A materialised cuboid keeps, per group, the set of contributing fact
    ids together with the aggregate cell. Any coarser cuboid reachable from
    it through {e covered} lattice edges can then be computed from the
    intermediate alone — the fact sets eliminate duplicates across the
    merging groups, so non-disjointness costs memory but never correctness.
    Coverage is the one thing fact sets cannot repair: a fact absent from
    every group of the intermediate (because the relaxed-away axis was
    missing) is simply not there to be rolled up; [rollup] therefore
    refuses edges that are not covered unless explicitly forced. *)

type t

val cuboid_id : t -> int
val group_count : t -> int
val fact_items : t -> key:string -> int list
(** Sorted fact ids of one group ([[]] when the group is absent). *)

val materialize : Context.t -> cuboid:int -> t
(** One scan of the witness table, collecting groups with fact sets. *)

val apply_rows : Context.t -> t -> X3_pattern.Witness.row list -> int
(** Patch the view with freshly appended witness rows — [materialize]'s
    per-row step over only the delta. Returns how many of the rows
    represent their fact in this view's cuboid (and were therefore
    added). Group fact-sets make the patch duplicate-safe, so it is
    unconditionally sound for any delta of fresh facts; the rows must be
    coded against the same table and layout the view was built on. *)

val approx_bytes : t -> int
(** Estimated resident bytes of the view (groups, keys and fact sets),
    following the {!Governor} cost-model conventions — what a byte-budgeted
    cuboid cache charges per entry. *)

val cells : t -> (string * Aggregate.cell) list
(** The group aggregates, sorted by key. *)

val rollup :
  Context.t ->
  props:X3_lattice.Properties.t ->
  t ->
  coarser:int ->
  (t, string) result
(** [rollup ctx ~props intermediate ~coarser] computes a coarser cuboid
    from the intermediate without touching base data. Every lattice path
    step from the intermediate's cuboid to [coarser] must be covered
    according to [props]; otherwise [Error] explains which step fails. *)

val rollup_unchecked : Context.t -> t -> coarser:int -> t
(** The same computation without the coverage check — what a system that
    blindly trusts materialised views would do; used by tests to
    demonstrate the §3.6 failure mode. *)

val to_result : t -> Cube_result.t -> unit
(** Copy the intermediate's cells into a cube result. *)

(** {1 Crash-safe persistence} *)

val save : t -> X3_storage.Snapshot_store.t -> unit
(** Atomically commit the view (group keys + fact sets) to [store] —
    portable string keys, so the snapshot is independent of the source
    table's dictionary order. *)

val load : Context.t -> X3_storage.Snapshot_store.t -> (t, string) result
(** Rebuild a view from the store's committed snapshot against [ctx]'s
    table; [Error] when a record is malformed or names values the table
    does not contain. *)

val to_records : t -> string list
(** The view's portable record stream (one ['M'] header carrying the
    cuboid id and group count, then one ['G'] record per group) — the
    unit {!save} commits, exposed so several views can share one store
    (the serve daemon's warm-restart snapshot packs a whole cache). *)

val of_records : Context.t -> string list -> (t, string) result
(** Inverse of {!to_records} against [ctx]'s table — {!load} on an
    already-read record stream. *)
