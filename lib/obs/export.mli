(** Exporters for traces and metric snapshots.

    Everything funnels through {!Json}, so equal inputs produce byte-equal
    output — the property the bench harness and the determinism tests rely
    on. *)

val chrome_trace : Trace.ring list -> Json.t
(** A Chrome [trace_event]-format document (load in [chrome://tracing] or
    [ui.perfetto.dev]). One track per domain ([tid] = domain id, named via
    [thread_name] metadata); timestamps are microseconds rebased on the
    earliest event; dropped-event counts, if any, appear under a top-level
    ["x3_dropped_events"] object. *)

val prometheus : (string * Metrics.value) list -> string
(** Prometheus text exposition of a {!Metrics.snapshot}. Metric names are
    sanitized ([.] → [_]) and prefixed with [x3_]; a name carrying a
    {!Metrics.labeled} block renders as one series of the shared base
    family, with a single [# TYPE] header per family (the snapshot's
    name order keeps label sets adjacent). Histograms emit cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]; a labelled
    histogram merges its labels with [le]. *)

val schema_version : string
(** ["x3-metrics/1"] — stamped into every metrics document. *)

val metrics_json :
  ?meta:(string * Json.t) list -> (string * Metrics.value) list -> Json.t
(** The shared metrics document:
    [{"schema": "x3-metrics/1", "meta": {...}, "metrics": {name: ...}}].
    Both [x3 cube --metrics FILE] and the bench harness's [BENCH_*.json]
    emit this shape. *)
