(** A unified metrics registry: named counters, gauges and latency
    histograms over atomics.

    One registry describes one query (or one bench run). Metric handles
    are interned by name — looking one up twice returns the same atomic —
    and every update after creation is lock-free, so worker domains may
    bump shared counters. {!snapshot} is deterministic: entries sorted by
    name, values read once. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if [name] exists with a
    different kind. *)

val gauge : t -> string -> gauge
val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are ascending finite upper bounds (default: log-spaced
    1µs..10s for latencies in seconds); an overflow bucket is implicit. *)

val default_buckets : float array

val labeled : string -> (string * string) list -> string
(** [labeled name [(k, v); ...]] is the canonical labelled metric name
    [name{k="v",...}], with values escaped per the Prometheus text format
    (backslash, double quote, newline). Intern the result like any other
    name: each label combination is its own metric, and the Prometheus
    encoder renders the series under the shared base name. [labeled name
    [] = name]. *)

val escape_label_value : string -> string
(** The Prometheus label-value escape (backslash, double quote, newline)
    — exposed for encoders that assemble label sets by hand. *)

val inc : ?by:int -> counter -> unit
val set : gauge -> int -> unit
val observe : histogram -> float -> unit

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      bounds : float array;
      counts : int array;  (** per-bucket, overflow last; not cumulative *)
      count : int;
      sum : float;
    }

val snapshot : t -> (string * value) list
(** All metrics, sorted by name. *)
