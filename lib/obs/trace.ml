(* Query-scoped tracing over per-domain ring buffers.

   Design constraints, in order:
   - off must be free: every probe is guarded by one atomic load, and the
     off path allocates nothing;
   - on must be cheap from worker domains: each domain writes its own ring
     (created lazily through DLS, registered once under a mutex), so the
     hot path takes no lock and shares no cache line with other writers;
   - overflow must be survivable: a full ring drops its oldest event and
     counts the drop, so a verbose run degrades to a truncated trace
     instead of unbounded memory.

   Rings are read by {!dump} on the coordinating domain after workers have
   joined (the engine's parallel paths join every domain before returning),
   so reads never race writes. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type phase = Begin | End | Complete of float | Instant

type event = {
  name : string;
  phase : phase;
  ts : float;
  span : int;
  parent : int;
  domain : int;
  attrs : attr list;
}

let null_event =
  { name = ""; phase = Instant; ts = 0.; span = 0; parent = 0; domain = 0; attrs = [] }

type rb = {
  rb_domain : int;
  mutable buf : event array;
  mutable cap : int;
  mutable next : int;  (* write cursor *)
  mutable count : int;
  mutable dropped : int;
  mutable stack : (int * string) list;  (* open spans, innermost first *)
  mutable rb_gen : int;
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let configured_ring = Atomic.make 65536
let span_ids = Atomic.make 0
let registry_lock = Mutex.create ()
let registry : rb list ref = ref []

let enabled () = Atomic.get enabled_flag

let dls_key : rb Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        rb_domain = (Domain.self () :> int);
        buf = [||];
        cap = 0;
        next = 0;
        count = 0;
        dropped = 0;
        stack = [];
        rb_gen = -1;
      })

(* The current domain's ring, (re)initialised and registered when the
   global generation has moved on (enable/reset). *)
let get_rb () =
  let rb = Domain.DLS.get dls_key in
  let gen = Atomic.get generation in
  if rb.rb_gen <> gen then begin
    rb.cap <- Atomic.get configured_ring;
    rb.buf <- Array.make rb.cap null_event;
    rb.next <- 0;
    rb.count <- 0;
    rb.dropped <- 0;
    rb.stack <- [];
    rb.rb_gen <- gen;
    Mutex.lock registry_lock;
    registry := rb :: !registry;
    Mutex.unlock registry_lock
  end;
  rb

let push rb e =
  if rb.count = rb.cap then begin
    (* Full: overwrite the oldest event (at [next]) and count the drop. *)
    rb.dropped <- rb.dropped + 1;
    rb.buf.(rb.next) <- e;
    rb.next <- (rb.next + 1) mod rb.cap
  end
  else begin
    rb.buf.(rb.next) <- e;
    rb.next <- (rb.next + 1) mod rb.cap;
    rb.count <- rb.count + 1
  end

let now () = Unix.gettimeofday ()

type span = int

let null_span = 0

let parent_of rb = match rb.stack with (p, _) :: _ -> p | [] -> 0

let instant ?(attrs = []) name =
  if enabled () then begin
    let rb = get_rb () in
    push rb
      {
        name;
        phase = Instant;
        ts = now ();
        span = 0;
        parent = parent_of rb;
        domain = rb.rb_domain;
        attrs;
      }
  end

let start ?(attrs = []) name =
  if not (enabled ()) then null_span
  else begin
    let rb = get_rb () in
    let id = 1 + Atomic.fetch_and_add span_ids 1 in
    push rb
      {
        name;
        phase = Begin;
        ts = now ();
        span = id;
        parent = parent_of rb;
        domain = rb.rb_domain;
        attrs;
      };
    rb.stack <- (id, name) :: rb.stack;
    id
  end

let finish ?(attrs = []) span =
  if span <> null_span && enabled () then begin
    let rb = get_rb () in
    let name = ref "" in
    (match rb.stack with
    | (s, n) :: rest when s = span ->
        name := n;
        rb.stack <- rest
    | stack ->
        (* Tolerate out-of-order closes (an exception skipped a finish):
           drop the span wherever it sits so the stack stays sane. *)
        rb.stack <-
          List.filter
            (fun (s, n) ->
              if s = span then name := n;
              s <> span)
            stack);
    push rb
      {
        name = !name;
        phase = End;
        ts = now ();
        span;
        parent = 0;
        domain = rb.rb_domain;
        attrs;
      }
  end

let with_span ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    let s = start ?attrs name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish s ~attrs:[ ("error", Bool true) ];
        raise e
  end

let complete ?(attrs = []) ~start:ts0 name =
  if enabled () then begin
    let rb = get_rb () in
    let id = 1 + Atomic.fetch_and_add span_ids 1 in
    push rb
      {
        name;
        phase = Complete ts0;
        ts = now ();
        span = id;
        parent = parent_of rb;
        domain = rb.rb_domain;
        attrs;
      }
  end

let reset () =
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.incr generation

let enable ?ring_size () =
  (match ring_size with
  | Some n ->
      if n < 2 then invalid_arg "Trace.enable: ring must hold at least 2 events";
      Atomic.set configured_ring n
  | None -> ());
  reset ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

type ring = { ring_domain : int; events : event list; ring_dropped : int }

let dump () =
  Mutex.lock registry_lock;
  let rbs = !registry in
  Mutex.unlock registry_lock;
  List.sort
    (fun a b -> compare a.ring_domain b.ring_domain)
    (List.map
       (fun rb ->
         let oldest = if rb.count = rb.cap then rb.next else 0 in
         {
           ring_domain = rb.rb_domain;
           events =
             List.init rb.count (fun i -> rb.buf.((oldest + i) mod rb.cap));
           ring_dropped = rb.dropped;
         })
       rbs)
