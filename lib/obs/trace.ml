(* Scoped tracing over per-writer ring buffers.

   Design constraints, in order:
   - off must be free: every probe is guarded by one atomic load, and the
     off path allocates nothing;
   - concurrent requests must not share a trace: a *scope* owns its own
     rings and span ids, and a probe routes to whichever scope the calling
     thread is bound to ({!with_scope}) — N server connections each bind
     their own scope and capture disjoint span trees;
   - on must be cheap from worker domains: each writer thread gets its own
     ring inside its scope, and the (thread -> ring) resolution is cached
     per domain behind a generation check, so the steady-state hot path is
     one atomic load, one DLS read and one thread-id compare;
   - overflow must be survivable: a full ring drops its oldest event and
     counts the drop, so a verbose run degrades to a truncated trace
     instead of unbounded memory.

   The pre-scope API ({!enable}/{!disable}/{!reset}/{!dump}) survives as a
   distinguished *global* scope: a thread bound to no scope while the
   global flag is up writes there, which is exactly the old single-query
   CLI behaviour. A thread bound to no scope while only request scopes are
   active writes nowhere — isolation by construction, not by filtering.

   Rings are read by {!dump}/{!scope_dump} after the scope's writers have
   finished (the engine's parallel paths join every worker domain before
   returning), so reads never race writes. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type phase = Begin | End | Complete of float | Instant

type event = {
  name : string;
  phase : phase;
  ts : float;
  span : int;
  parent : int;
  domain : int;
  attrs : attr list;
}

let null_event =
  { name = ""; phase = Instant; ts = 0.; span = 0; parent = 0; domain = 0; attrs = [] }

type rb = {
  rb_domain : int;
  rb_ids : int Atomic.t;  (* the owning scope's span-id counter *)
  buf : event array;
  cap : int;
  mutable next : int;  (* write cursor *)
  mutable count : int;
  mutable dropped : int;
  mutable stack : (int * string) list;  (* open spans, innermost first *)
}

type scope = {
  sc_id : string;
  mutable sc_ring : int;
  sc_span_ids : int Atomic.t;
  (* writer thread id -> its ring; a handful of entries (the binding
     thread plus worker domains), so an assoc list beats a table *)
  mutable sc_writers : (int * rb) list;
}

let default_ring = 65536

let make_scope ?(ring_size = default_ring) ~id () =
  if ring_size < 2 then
    invalid_arg "Trace.make_scope: ring must hold at least 2 events";
  { sc_id = id; sc_ring = ring_size; sc_span_ids = Atomic.make 0; sc_writers = [] }

let scope_id s = s.sc_id

(* --- global routing state ------------------------------------------------ *)

let lock = Mutex.create ()
let global_scope = make_scope ~id:"global" ()
let global_on = ref false
let bindings : (int, scope) Hashtbl.t = Hashtbl.create 16

(* One atomic load guards every probe: true iff the global flag is up or
   at least one thread is bound to a scope. *)
let enabled_flag = Atomic.make false

(* Bumped on any routing change (bind/unbind/enable/disable/reset);
   invalidates the per-domain resolution caches. *)
let bind_gen = Atomic.make 0

let enabled () = Atomic.get enabled_flag

(* call under [lock] *)
let refresh_routing () =
  Atomic.set enabled_flag (!global_on || Hashtbl.length bindings > 0);
  Atomic.incr bind_gen

let self_tid () = Thread.id (Thread.self ())

let with_scope scope f =
  let tid = self_tid () in
  Mutex.lock lock;
  let prev = Hashtbl.find_opt bindings tid in
  Hashtbl.replace bindings tid scope;
  refresh_routing ();
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock lock;
      (match prev with
      | None -> Hashtbl.remove bindings tid
      | Some s -> Hashtbl.replace bindings tid s);
      refresh_routing ();
      Mutex.unlock lock)
    f

let with_scope_opt scope f =
  match scope with None -> f () | Some s -> with_scope s f

let current_scope () =
  if not (enabled ()) then None
  else begin
    let tid = self_tid () in
    Mutex.lock lock;
    let s = Hashtbl.find_opt bindings tid in
    Mutex.unlock lock;
    s
  end

(* --- writer resolution --------------------------------------------------- *)

(* call under [lock] *)
let writer_rb scope tid =
  match List.assq_opt tid scope.sc_writers with
  | Some rb -> rb
  | None ->
      let rb =
        {
          rb_domain = (Domain.self () :> int);
          rb_ids = scope.sc_span_ids;
          buf = Array.make scope.sc_ring null_event;
          cap = scope.sc_ring;
          next = 0;
          count = 0;
          dropped = 0;
          stack = [];
        }
      in
      scope.sc_writers <- (tid, rb) :: scope.sc_writers;
      rb

(* Per-domain cache of the last resolution: (routing generation, thread
   id, ring). Valid while no binding anywhere has changed and the calling
   thread matches — the steady state of a compute loop. *)
let cache_key : (int * int * rb) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let resolve () =
  let tid = self_tid () in
  let gen = Atomic.get bind_gen in
  let cache = Domain.DLS.get cache_key in
  match !cache with
  | Some (g, t, rb) when g = gen && t = tid -> Some rb
  | _ ->
      Mutex.lock lock;
      let scope =
        match Hashtbl.find_opt bindings tid with
        | Some _ as s -> s
        | None -> if !global_on then Some global_scope else None
      in
      let rb = Option.map (fun s -> writer_rb s tid) scope in
      Mutex.unlock lock;
      cache := Option.map (fun rb -> (gen, tid, rb)) rb;
      rb

(* --- the probes ---------------------------------------------------------- *)

let push rb e =
  if rb.count = rb.cap then begin
    (* Full: overwrite the oldest event (at [next]) and count the drop. *)
    rb.dropped <- rb.dropped + 1;
    rb.buf.(rb.next) <- e;
    rb.next <- (rb.next + 1) mod rb.cap
  end
  else begin
    rb.buf.(rb.next) <- e;
    rb.next <- (rb.next + 1) mod rb.cap;
    rb.count <- rb.count + 1
  end

let now () = Unix.gettimeofday ()

type span = int

let null_span = 0

let parent_of rb = match rb.stack with (p, _) :: _ -> p | [] -> 0

let instant ?(attrs = []) name =
  if enabled () then
    match resolve () with
    | None -> ()
    | Some rb ->
        push rb
          {
            name;
            phase = Instant;
            ts = now ();
            span = 0;
            parent = parent_of rb;
            domain = rb.rb_domain;
            attrs;
          }

let start ?(attrs = []) name =
  if not (enabled ()) then null_span
  else
    match resolve () with
    | None -> null_span
    | Some rb ->
        let id = 1 + Atomic.fetch_and_add rb.rb_ids 1 in
        push rb
          {
            name;
            phase = Begin;
            ts = now ();
            span = id;
            parent = parent_of rb;
            domain = rb.rb_domain;
            attrs;
          };
        rb.stack <- (id, name) :: rb.stack;
        id

let finish ?(attrs = []) span =
  if span <> null_span && enabled () then
    match resolve () with
    | None -> ()
    | Some rb ->
        let name = ref "" in
        (match rb.stack with
        | (s, n) :: rest when s = span ->
            name := n;
            rb.stack <- rest
        | stack ->
            (* Tolerate out-of-order closes (an exception skipped a finish):
               drop the span wherever it sits so the stack stays sane. *)
            rb.stack <-
              List.filter
                (fun (s, n) ->
                  if s = span then name := n;
                  s <> span)
                stack);
        push rb
          {
            name = !name;
            phase = End;
            ts = now ();
            span;
            parent = 0;
            domain = rb.rb_domain;
            attrs;
          }

let with_span ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    let s = start ?attrs name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish s ~attrs:[ ("error", Bool true) ];
        raise e
  end

let complete ?(attrs = []) ~start:ts0 name =
  if enabled () then
    match resolve () with
    | None -> ()
    | Some rb ->
        let id = 1 + Atomic.fetch_and_add rb.rb_ids 1 in
        push rb
          {
            name;
            phase = Complete ts0;
            ts = now ();
            span = id;
            parent = parent_of rb;
            domain = rb.rb_domain;
            attrs;
          }

(* --- reading ------------------------------------------------------------- *)

type ring = { ring_domain : int; events : event list; ring_dropped : int }

let scope_dump scope =
  Mutex.lock lock;
  let writers = scope.sc_writers in
  Mutex.unlock lock;
  List.sort
    (fun a b -> compare a.ring_domain b.ring_domain)
    (List.map
       (fun (_tid, rb) ->
         let oldest = if rb.count = rb.cap then rb.next else 0 in
         {
           ring_domain = rb.rb_domain;
           events =
             List.init rb.count (fun i -> rb.buf.((oldest + i) mod rb.cap));
           ring_dropped = rb.dropped;
         })
       writers)

(* --- the global scope (pre-scope CLI API) -------------------------------- *)

let reset () =
  Mutex.lock lock;
  global_scope.sc_writers <- [];
  refresh_routing ();
  Mutex.unlock lock

let enable ?ring_size () =
  (match ring_size with
  | Some n ->
      if n < 2 then invalid_arg "Trace.enable: ring must hold at least 2 events"
  | None -> ());
  Mutex.lock lock;
  (match ring_size with
  | Some n -> global_scope.sc_ring <- n
  | None -> ());
  global_scope.sc_writers <- [];
  global_on := true;
  refresh_routing ();
  Mutex.unlock lock

let disable () =
  Mutex.lock lock;
  global_on := false;
  refresh_routing ();
  Mutex.unlock lock

let dump () = scope_dump global_scope
