(* Exporters: Chrome trace_event JSON, Prometheus text exposition, and the
   x3-metrics/1 JSON document shared by `x3 cube --metrics` and the bench
   harness. All output funnels through {!Json} so equal inputs produce
   byte-equal artefacts. *)

let value_to_json : Trace.value -> Json.t = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let args_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

(* Chrome's trace viewer wants integer-ish microsecond timestamps; rebase
   on the earliest event so a trace taken hours into a process still loads
   with sensible numbers. *)
let chrome_trace rings =
  let t0 =
    List.fold_left
      (fun acc (r : Trace.ring) ->
        List.fold_left
          (fun acc (e : Trace.event) ->
            let acc = Float.min acc e.ts in
            match e.phase with
            | Trace.Complete start -> Float.min acc start
            | _ -> acc)
          acc r.events)
      Float.infinity rings
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let us t = Json.Float (Float.round ((t -. t0) *. 1e7) /. 10.) in
  let common name ph tid ts rest =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str ph);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
         ("ts", us ts);
       ]
      @ rest)
  in
  let event_json tid (e : Trace.event) =
    let args =
      args_of_attrs
        (e.attrs
        @ (if e.span <> 0 then [ ("span_id", Trace.Int e.span) ] else [])
        @ if e.parent <> 0 then [ ("parent_id", Trace.Int e.parent) ] else [])
    in
    match e.phase with
    | Trace.Begin -> common e.name "B" tid e.ts [ ("args", args) ]
    | Trace.End -> common e.name "E" tid e.ts [ ("args", args) ]
    | Trace.Complete start ->
        common e.name "X" tid start
          [
            ( "dur",
              Json.Float (Float.round ((e.ts -. start) *. 1e7) /. 10.) );
            ("args", args);
          ]
    | Trace.Instant ->
        common e.name "i" tid e.ts [ ("s", Json.Str "t"); ("args", args) ]
  in
  let track (r : Trace.ring) =
    let meta =
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int r.ring_domain);
          ( "args",
            Json.Obj
              [
                ( "name",
                  Json.Str
                    (if r.ring_domain = 0 then "domain 0 (coordinator)"
                     else Printf.sprintf "domain %d" r.ring_domain) );
              ] );
        ]
    in
    meta :: List.map (event_json r.ring_domain) r.events
  in
  let dropped =
    List.filter_map
      (fun (r : Trace.ring) ->
        if r.ring_dropped > 0 then
          Some (string_of_int r.ring_domain, Json.Int r.ring_dropped)
        else None)
      rings
  in
  Json.Obj
    ([
       ("traceEvents", Json.Arr (List.concat_map track rings));
       ("displayTimeUnit", Json.Str "ms");
     ]
    @
    if dropped = [] then []
    else [ ("x3_dropped_events", Json.Obj dropped) ])

(* ---- Prometheus text exposition ---- *)

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "x3_" ^ Bytes.to_string b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let prometheus snapshot =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      match (v : Metrics.value) with
      | Metrics.Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n c)
      | Metrics.Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n g)
      | Metrics.Histogram { bounds; counts; count; sum } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if i < Array.length bounds then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                     (prom_float bounds.(i)) !cum)
              else
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum))
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" n (prom_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    snapshot;
  Buffer.contents buf

(* ---- x3-metrics/1: the one schema for --metrics and BENCH_*.json ---- *)

let schema_version = "x3-metrics/1"

let metric_json (v : Metrics.value) =
  match v with
  | Metrics.Counter c ->
      Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c) ]
  | Metrics.Gauge g ->
      Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Int g) ]
  | Metrics.Histogram { bounds; counts; count; sum } ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ( "bounds",
            Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) bounds))
          );
          ( "counts",
            Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) counts))
          );
          ("count", Json.Int count);
          ("sum", Json.Float sum);
        ]

let metrics_json ?(meta = []) snapshot =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("meta", Json.Obj meta);
      ( "metrics",
        Json.Obj (List.map (fun (name, v) -> (name, metric_json v)) snapshot)
      );
    ]
