(* Exporters: Chrome trace_event JSON, Prometheus text exposition, and the
   x3-metrics/1 JSON document shared by `x3 cube --metrics` and the bench
   harness. All output funnels through {!Json} so equal inputs produce
   byte-equal artefacts. *)

let value_to_json : Trace.value -> Json.t = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let args_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

(* Chrome's trace viewer wants integer-ish microsecond timestamps; rebase
   on the earliest event so a trace taken hours into a process still loads
   with sensible numbers. *)
let chrome_trace rings =
  let t0 =
    List.fold_left
      (fun acc (r : Trace.ring) ->
        List.fold_left
          (fun acc (e : Trace.event) ->
            let acc = Float.min acc e.ts in
            match e.phase with
            | Trace.Complete start -> Float.min acc start
            | _ -> acc)
          acc r.events)
      Float.infinity rings
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let us t = Json.Float (Float.round ((t -. t0) *. 1e7) /. 10.) in
  let common name ph tid ts rest =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str ph);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
         ("ts", us ts);
       ]
      @ rest)
  in
  let event_json tid (e : Trace.event) =
    let args =
      args_of_attrs
        (e.attrs
        @ (if e.span <> 0 then [ ("span_id", Trace.Int e.span) ] else [])
        @ if e.parent <> 0 then [ ("parent_id", Trace.Int e.parent) ] else [])
    in
    match e.phase with
    | Trace.Begin -> common e.name "B" tid e.ts [ ("args", args) ]
    | Trace.End -> common e.name "E" tid e.ts [ ("args", args) ]
    | Trace.Complete start ->
        common e.name "X" tid start
          [
            ( "dur",
              Json.Float (Float.round ((e.ts -. start) *. 1e7) /. 10.) );
            ("args", args);
          ]
    | Trace.Instant ->
        common e.name "i" tid e.ts [ ("s", Json.Str "t"); ("args", args) ]
  in
  let track (r : Trace.ring) =
    let meta =
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int r.ring_domain);
          ( "args",
            Json.Obj
              [
                ( "name",
                  Json.Str
                    (if r.ring_domain = 0 then "domain 0 (coordinator)"
                     else Printf.sprintf "domain %d" r.ring_domain) );
              ] );
        ]
    in
    meta :: List.map (event_json r.ring_domain) r.events
  in
  let dropped =
    List.filter_map
      (fun (r : Trace.ring) ->
        if r.ring_dropped > 0 then
          Some (string_of_int r.ring_domain, Json.Int r.ring_dropped)
        else None)
      rings
  in
  Json.Obj
    ([
       ("traceEvents", Json.Arr (List.concat_map track rings));
       ("displayTimeUnit", Json.Str "ms");
     ]
    @
    if dropped = [] then []
    else [ ("x3_dropped_events", Json.Obj dropped) ])

(* ---- Prometheus text exposition ---- *)

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "x3_" ^ Bytes.to_string b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* A registry name may carry labels in canonical [base{k="v",...}] form
   (see {!Metrics.labeled}); only the base is sanitized — the label block
   was escaped at construction. Splitting here keeps the registry flat
   while letting the exposition group label sets under one family: the
   snapshot is sorted by full name, so every series of [base{] is
   adjacent and the [# TYPE] header is emitted once per family. *)
let split_labels name =
  match String.index_opt name '{' with
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}'
    ->
      ( String.sub name 0 i,
        Some (String.sub name (i + 1) (String.length name - i - 2)) )
  | _ -> (name, None)

let series base labels = match labels with
  | None -> base
  | Some l -> Printf.sprintf "%s{%s}" base l

(* [suffix] lands on the base name, before the label block — what the
   exposition format requires of histogram [_bucket]/[_sum]/[_count]
   series. [extra] appends a label (the bucket's [le]). *)
let series_sfx base ~suffix ?extra labels =
  let labels =
    match (labels, extra) with
    | None, None -> None
    | Some l, None -> Some l
    | None, Some e -> Some e
    | Some l, Some e -> Some (l ^ "," ^ e)
  in
  series (base ^ suffix) labels

let prometheus snapshot =
  let buf = Buffer.create 1024 in
  let last_type = ref "" in
  let type_line base kind =
    let header = Printf.sprintf "# TYPE %s %s\n" base kind in
    if !last_type <> header then begin
      last_type := header;
      Buffer.add_string buf header
    end
  in
  List.iter
    (fun (name, v) ->
      let raw_base, labels = split_labels name in
      let base = sanitize raw_base in
      match (v : Metrics.value) with
      | Metrics.Counter c ->
          type_line base "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (series base labels) c)
      | Metrics.Gauge g ->
          type_line base "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (series base labels) g)
      | Metrics.Histogram { bounds; counts; count; sum } ->
          type_line base "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length bounds then prom_float bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s %d\n"
                   (series_sfx base ~suffix:"_bucket"
                      ~extra:(Printf.sprintf "le=\"%s\"" le)
                      labels)
                   !cum))
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n"
               (series_sfx base ~suffix:"_sum" labels)
               (prom_float sum));
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n"
               (series_sfx base ~suffix:"_count" labels)
               count))
    snapshot;
  Buffer.contents buf

(* ---- x3-metrics/1: the one schema for --metrics and BENCH_*.json ---- *)

let schema_version = "x3-metrics/1"

let metric_json (v : Metrics.value) =
  match v with
  | Metrics.Counter c ->
      Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c) ]
  | Metrics.Gauge g ->
      Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Int g) ]
  | Metrics.Histogram { bounds; counts; count; sum } ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ( "bounds",
            Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) bounds))
          );
          ( "counts",
            Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) counts))
          );
          ("count", Json.Int count);
          ("sum", Json.Float sum);
        ]

let metrics_json ?(meta = []) snapshot =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("meta", Json.Obj meta);
      ( "metrics",
        Json.Obj (List.map (fun (name, v) -> (name, metric_json v)) snapshot)
      );
    ]
