(** A minimal JSON document builder.

    One encoder for every machine-readable artefact the engine emits —
    Chrome traces, metrics documents, bench results — so they all share
    escaping, float formatting and layout instead of each hand-rolling
    [Printf] into a [Buffer]. Field order is preserved as given;
    deterministic inputs produce byte-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinity render as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Render the document; [pretty] (default [true]) uses 2-space indent and
    one field per line. A trailing newline is appended when pretty. *)

val to_file : ?pretty:bool -> string -> t -> unit

val parse : string -> (t, string) result
(** Decode one JSON document — the inverse of {!to_string} for everything
    the encoder emits. Numbers without a fraction or exponent decode as
    [Int], others as [Float]; [\uXXXX] escapes decode to UTF-8. Nesting
    deeper than 512 levels, trailing bytes and malformed input are typed
    errors (never an exception) — this is the front door for untrusted
    protocol frames. *)

(** {2 Accessors — conveniences for protocol decoding} *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on anything else or a missing key). *)

val string_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option
