(** A minimal JSON document builder.

    One encoder for every machine-readable artefact the engine emits —
    Chrome traces, metrics documents, bench results — so they all share
    escaping, float formatting and layout instead of each hand-rolling
    [Printf] into a [Buffer]. Field order is preserved as given;
    deterministic inputs produce byte-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinity render as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Render the document; [pretty] (default [true]) uses 2-space indent and
    one field per line. A trailing newline is appended when pretty. *)

val to_file : ?pretty:bool -> string -> t -> unit
