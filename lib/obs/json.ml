type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity; render them as null rather than emitting an
   unparsable document. The %.12g form round-trips every float the metrics
   pipeline produces while staying stable across runs of equal inputs. *)
let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write ~pretty buf level t =
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          write ~pretty buf (level + 1) item)
        items;
      newline ();
      indent level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          write ~pretty buf (level + 1) v)
        fields;
      newline ();
      indent level;
      Buffer.add_char buf '}'

let to_string ?(pretty = true) t =
  let buf = Buffer.create 1024 in
  write ~pretty buf 0 t;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?pretty path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?pretty t))
