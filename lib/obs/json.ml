type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity; render them as null rather than emitting an
   unparsable document. The %.12g form round-trips every float the metrics
   pipeline produces while staying stable across runs of equal inputs. *)
let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write ~pretty buf level t =
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          write ~pretty buf (level + 1) item)
        items;
      newline ();
      indent level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          write ~pretty buf (level + 1) v)
        fields;
      newline ();
      indent level;
      Buffer.add_char buf '}'

let to_string ?(pretty = true) t =
  let buf = Buffer.create 1024 in
  write ~pretty buf 0 t;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?pretty path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?pretty t))

(* --- parsing -------------------------------------------------------------- *)
(* The decoder side of the same dialect [write] emits: standard JSON with
   \uXXXX escapes decoded to UTF-8. Numbers without '.', 'e' or 'E' become
   [Int] (falling back to [Float] on overflow), everything else [Float] —
   the inverse of the encoder's integer/float split, so round-tripping a
   document preserves its constructors. Recursion depth is bounded so a
   hostile ["[[[[..."] frame is a typed error, not a stack overflow. *)

exception Parse_error of string

let max_depth = 512

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = s.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  (* Encode one code point as UTF-8 (the encoder only ever emits \u00XX,
     but accept the full basic multilingual plane on input). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' -> add_utf8 buf (hex4 ())
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          true
      | _ -> false
    in
    while consume () do () done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %s" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %s" text))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_member name t =
  match member name t with Some (Str s) -> Some s | _ -> None

let int_member name t =
  match member name t with Some (Int i) -> Some i | _ -> None

let bool_member name t =
  match member name t with Some (Bool b) -> Some b | _ -> None
