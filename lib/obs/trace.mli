(** Scoped tracing: per-writer ring buffers of span events.

    Probes are sprinkled through the engine at its natural seams (parse,
    compile, materialise, per-cuboid compute, sort runs, governor and
    admission decisions). With tracing {e disabled} — the default — every
    probe is one atomic load and no allocation; {!with_span} simply calls
    its thunk.

    Events are captured into a {!scope}: an isolated bundle of rings (one
    per writer thread) with its own span-id counter. A thread binds a
    scope with {!with_scope}; every probe it emits while bound lands in
    that scope, so N concurrent server requests — each bound to its own
    scope on its own connection thread — capture disjoint span trees with
    no cross-request leakage. Worker domains spawned inside a bound
    region are re-bound explicitly (the engine's {!X3_core.Parallel}
    captures {!current_scope} at fork), and each writer appends to its
    own fixed-size ring: no locks on the steady-state hot path, and a
    full ring drops its oldest event and counts the drop.

    The pre-scope API ({!enable}/{!disable}/{!reset}/{!dump}) drives a
    distinguished {e global} scope: threads bound to no scope write there
    while it is enabled — the single-query CLI behaviour. A thread bound
    to no scope while only request scopes are active writes nowhere.

    {!dump}/{!scope_dump} must only be called when no writer is mid-write
    — the engine's parallel paths join every worker before returning, so
    dumping after a request (or between queries) is safe. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type phase =
  | Begin
  | End
  | Complete of float  (** a span emitted at once; payload = start time *)
  | Instant

type event = {
  name : string;  (** empty on [End] events whose span was force-closed *)
  phase : phase;
  ts : float;  (** [Unix.gettimeofday] at emission *)
  span : int;  (** span id, unique within its scope; 0 for instants *)
  parent : int;  (** enclosing open span in the same ring; 0 = root *)
  domain : int;  (** the emitting domain's id — one trace track each *)
  attrs : attr list;
}

val enabled : unit -> bool
(** One atomic load: true iff the global scope is enabled or any thread
    is currently bound to a scope. The fast gate every probe checks. *)

(** {1 Scopes} *)

type scope
(** An isolated trace capture: its own rings, span ids and identity.
    A request-scoped server carries one per in-flight request. *)

val make_scope : ?ring_size:int -> id:string -> unit -> scope
(** A fresh scope. [id] names it (a server uses the request id);
    [ring_size] (default 65536 events, min 2) bounds each writer's
    memory. *)

val scope_id : scope -> string

val with_scope : scope -> (unit -> 'a) -> 'a
(** Bind [scope] to the calling thread for the duration of the thunk:
    every probe the thread emits routes to it. Nests (the previous
    binding is restored) and is exception-safe. *)

val with_scope_opt : scope option -> (unit -> 'a) -> 'a
(** [with_scope] when [Some]; just the thunk when [None] — the shape
    worker-spawn sites use to propagate {!current_scope}. *)

val current_scope : unit -> scope option
(** The calling thread's binding, if any — capture it before spawning a
    worker domain and re-bind inside with {!with_scope_opt}. *)

type ring = {
  ring_domain : int;
  events : event list;  (** oldest first *)
  ring_dropped : int;  (** events overwritten after the ring filled *)
}

val scope_dump : scope -> ring list
(** Snapshot the scope's rings, sorted by domain id. Caller must ensure
    none of the scope's writers is concurrently writing (join workers,
    finish the request first). *)

(** {1 The global scope}

    The pre-scope single-query API: [enable] turns the global scope on
    for threads bound to no explicit scope. *)

val enable : ?ring_size:int -> unit -> unit
(** Turn global tracing on, clearing the global scope's previous rings.
    [ring_size] (default 65536 events, min 2) bounds each writer's
    memory. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop the global scope's buffered events and forget its rings (they
    re-register on next use); the enabled flag is untouched. Call between
    queries to scope a trace to one run. *)

val now : unit -> float

(** {1 Probes} *)

type span

val null_span : span

val start : ?attrs:attr list -> string -> span
(** Open a span on the calling thread's ring. Returns {!null_span} when
    tracing is off (or the thread routes nowhere); {!finish} on
    {!null_span} is a no-op. *)

val finish : ?attrs:attr list -> span -> unit

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; an escaping exception closes
    the span with an [error] attribute and re-raises. *)

val instant : ?attrs:attr list -> string -> unit
(** A point event (admission decision, eviction, retry, ...). *)

val complete : ?attrs:attr list -> start:float -> string -> unit
(** Emit a whole span at once, for work whose begin time is only known to
    be interesting in hindsight (e.g. "this cuboid completed during the
    pass that started at [start]"). *)

val dump : unit -> ring list
(** Snapshot the global scope's rings, sorted by domain id. Caller must
    ensure no worker domain is concurrently writing (join workers
    first). *)
