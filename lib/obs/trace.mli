(** Query-scoped tracing: per-domain ring buffers of span events.

    Probes are sprinkled through the engine at its natural seams (parse,
    compile, materialise, per-cuboid compute, sort runs, governor and
    admission decisions). With tracing {e disabled} — the default — every
    probe is one atomic load and no allocation; {!with_span} simply calls
    its thunk. With tracing enabled, each domain appends events to its own
    fixed-size ring (no locks, no shared cache lines on the hot path); a
    full ring drops its oldest event and counts the drop.

    {!dump} must only be called when no worker domain is mid-write — the
    engine's parallel paths join every worker before returning, so dumping
    between queries is safe. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type phase =
  | Begin
  | End
  | Complete of float  (** a span emitted at once; payload = start time *)
  | Instant

type event = {
  name : string;  (** empty on [End] events whose span was force-closed *)
  phase : phase;
  ts : float;  (** [Unix.gettimeofday] at emission *)
  span : int;  (** span id; 0 for instants *)
  parent : int;  (** enclosing open span in the same domain; 0 = root *)
  domain : int;  (** the emitting domain's id — one trace track each *)
  attrs : attr list;
}

val enabled : unit -> bool

val enable : ?ring_size:int -> unit -> unit
(** Turn tracing on, clearing previous rings. [ring_size] (default 65536
    events, min 2) bounds each domain's memory. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all buffered events and forget every ring (they re-register on
    next use); the enabled flag is untouched. Call between queries to scope
    a trace to one run. *)

val now : unit -> float

type span

val null_span : span

val start : ?attrs:attr list -> string -> span
(** Open a span on the calling domain. Returns {!null_span} when tracing is
    off; {!finish} on {!null_span} is a no-op. *)

val finish : ?attrs:attr list -> span -> unit

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; an escaping exception closes
    the span with an [error] attribute and re-raises. *)

val instant : ?attrs:attr list -> string -> unit
(** A point event (admission decision, eviction, retry, ...). *)

val complete : ?attrs:attr list -> start:float -> string -> unit
(** Emit a whole span at once, for work whose begin time is only known to
    be interesting in hindsight (e.g. "this cuboid completed during the
    pass that started at [start]"). *)

type ring = {
  ring_domain : int;
  events : event list;  (** oldest first *)
  ring_dropped : int;  (** events overwritten after the ring filled *)
}

val dump : unit -> ring list
(** Snapshot every ring, sorted by domain id. Caller must ensure no worker
    domain is concurrently writing (join workers first). *)
