(* A named-metric registry over atomics.

   Creation (get-or-create by name) takes the registry mutex; every update
   afterwards is lock-free, so worker domains can bump shared counters.
   Histogram sums are accumulated with a CAS loop over a boxed float —
   observations are rare (per phase, per run), so contention is nil. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bounds : float array;  (* ascending upper bounds; +inf bucket implicit *)
  buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric = MCounter of counter | MGauge of gauge | MHist of histogram

type t = { lock : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

let kind_name = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"

let intern t name make match_ =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> (
          match match_ m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as a %s" name
                   (kind_name m)))
      | None ->
          let m, v = make () in
          Hashtbl.replace t.tbl name m;
          v)

let counter t name =
  intern t name
    (fun () ->
      let c = Atomic.make 0 in
      (MCounter c, c))
    (function MCounter c -> Some c | _ -> None)

let gauge t name =
  intern t name
    (fun () ->
      let g = Atomic.make 0 in
      (MGauge g, g))
    (function MGauge g -> Some g | _ -> None)

(* Log-spaced seconds: 1µs .. 10s, the range a phase latency can sensibly
   land in on any hardware this runs on. *)
let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let histogram ?(buckets = default_buckets) t name =
  let ok =
    Array.length buckets > 0
    && Array.for_all Float.is_finite buckets
    &&
    let sorted = ref true in
    Array.iteri
      (fun i b -> if i > 0 && b <= buckets.(i - 1) then sorted := false)
      buckets;
    !sorted
  in
  if not ok then invalid_arg "Metrics.histogram: bounds must ascend";
  intern t name
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        }
      in
      (MHist h, h))
    (function MHist h -> Some h | _ -> None)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let set g v = Atomic.set g v

let rec fadd a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then fadd a x

let observe h x =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || x <= h.bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(bucket 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  fadd h.h_sum x

(* Labels are encoded into the interned name in canonical Prometheus
   form — [name{k="v",...}] — so the registry, snapshot and JSON export
   stay a flat (string * value) association and only the Prometheus
   encoder needs to understand the structure. Label values are escaped
   here, once, per the exposition format (backslash, quote, newline). *)

let escape_label_value v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labeled name labels =
  match labels with
  | [] -> name
  | _ ->
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
    }

let snapshot t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | MCounter c -> Counter (Atomic.get c)
          | MGauge g -> Gauge (Atomic.get g)
          | MHist h ->
              Histogram
                {
                  bounds = Array.copy h.bounds;
                  counts = Array.map Atomic.get h.buckets;
                  count = Atomic.get h.h_count;
                  sum = Atomic.get h.h_sum;
                }
        in
        (name, v) :: acc)
      t.tbl []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries
