(** A crash-safe snapshot store: atomic whole-snapshot commits over a
    {!Buffer_pool}, with dual header slots so recovery always finds either
    the old or the new committed state — never a third thing.

    The store owns its pool's disk (create it on a fresh disk). Pages 0 and
    1 are the two {e header slots}; a commit with epoch [e] lives in slot
    [e land 1]. Committing writes the new snapshot's page chain first,
    {!Buffer_pool.flush}es it durable, then overwrites the {e inactive}
    slot and flushes again — the shadow-header protocol: the previously
    committed slot is never touched, so a crash at any write boundary
    leaves at least one intact slot whose chain is fully on media.

    A snapshot is an ordered list of opaque string records, stored as a
    length-prefixed stream across a singly-linked chain of pages. The slot
    carries the epoch, the chain head, the stream length and record count,
    a CRC-32 of the whole stream, and a CRC-32 of the slot itself — so
    recovery can reject torn slots even on a {!Disk.V0} (checksum-less)
    disk.

    {!recover} is the restart path: it drops all volatile pool state,
    reads both slots straight from media, and returns the
    highest-epoch slot whose chain verifies — falling back to the other
    slot, or reporting the store unrecoverable. *)

type t

val create : Buffer_pool.t -> t
(** Initialise a store on [pool]'s disk, which must be fresh (no pages
    allocated yet — raises [Invalid_argument] otherwise). Writes slot 0 as
    epoch 0, empty snapshot, and flushes it durable. *)

val commit : t -> string list -> unit
(** Atomically replace the committed snapshot. On return the new snapshot
    is durable and the old chain's pages are freed. If a fault interrupts
    the commit — an injected error, ENOSPC, a crash point — the committed
    state is still the previous snapshot: the store's in-memory state is
    unchanged on a transient error (and freshly allocated pages are given
    back), and {!recover} returns the previous epoch after a crash. *)

val read : t -> string list
(** The committed snapshot's records, in commit order. *)

val committed_epoch : t -> int
val record_count : t -> int

val verify : t -> (unit, string) result
(** Re-walk the committed chain from the pool and check every checksum —
    a cheap audit that the committed snapshot is still readable. *)

val save_file : ?page_size:int -> string -> string list -> (unit, string) result
(** Commit [records] to a standalone snapshot file: a fresh store is
    written beside [path] and renamed into place, so a crash mid-save
    leaves either the previous file or the new one, never a torn mix —
    the serve daemon's warm-restart snapshot. *)

val load_file : ?page_size:int -> string -> (string list, string) result
(** Read back a {!save_file} snapshot, verifying every checksum through
    {!recover} first.  Any failure — missing file, truncation, page or
    stream corruption — is an [Error], never an exception: callers treat
    snapshot loss as a cold start, not a fault. *)

val recover : Buffer_pool.t -> (t, string) result
(** Recover the store after a crash (or plain restart): invalidates the
    pool's volatile frames, parses both header slots from media, and
    returns the store at the newest epoch whose slot and chain both
    verify, freeing any orphaned pages a crashed commit left behind.
    [Error] means neither slot yields a consistent snapshot — the store is
    unrecoverable (which the dual-slot protocol makes impossible short of
    media corruption outside a commit window). *)
