(** The disk layer: a flat, growable array of fixed-size pages.

    Two backends share one interface. [in_memory] keeps pages in an OCaml
    array — deterministic, fast, the default for tests. [on_file] keeps them
    in a real file accessed with [pread]/[pwrite]-style positioned I/O —
    used when a workload must exceed memory, and to make external-sort
    spills real. Either way, {!Stats.t} counts page transfers; every access
    is expected to go through {!Buffer_pool}, which is what turns the paper's
    512 MB / 8 KB page configuration into a knob.

    Freed pages ({!free}) go on a free list that {!allocate} reuses LIFO, so
    temporary structures (external-sort runs, spilled cuboids) do not grow
    the disk for the life of the process. Accessing a freed page raises.

    {b Page format.} {!V1} (the default) prefixes every on-media page with a
    16-byte header — magic, format version, an LSN stamp (the disk's write
    counter) and a CRC-32 over header and payload — verified on every
    {!read_into}: a torn write or flipped bit raises {!Corruption} instead
    of being decoded into garbage records. The header is invisible to
    callers ([page_size] is the payload size). {!V0} is the seed's
    headerless format, kept for legacy fixtures and as the
    checksum-overhead baseline.

    {b Fault injection.} {!set_injector} installs a hook consulted at the
    start of every read, write, sync and allocation; the hook may raise (an
    injected I/O error) or ask for a {e torn} write (only the first [n]
    bytes of the physical page reach the media). See {!Fault} for
    deterministic schedules built on this. *)

type t

val default_page_size : int
(** 8192 bytes, the paper's TIMBER configuration. *)

type format = V0  (** headerless raw pages (the seed format) *)
            | V1  (** checksummed pages: 16-byte header + payload *)

val header_bytes : int
(** Physical header size of {!V1} pages (16). *)

exception Corruption of { page : int; reason : string }
(** A {!V1} page failed verification: bad magic, unknown version, or CRC
    mismatch — the page was torn mid-write or rotted on media. *)

exception Short_read of { page : int; got : int; want : int }
(** The file backend returned fewer bytes than a full page — the backing
    file was truncated; zero-filling would silently fabricate a blank
    page. *)

(** {1 Fault-injection hook} *)

type event = Read of int | Write of int | Sync | Allocate
(** One disk operation, fired {e before} any media access; [Read]/[Write]
    carry the page id. *)

type verdict = Proceed | Torn of int
(** The injector's answer: [Torn n] (meaningful on writes) truncates the
    physical write to its first [n] bytes — a torn write the {!V1} checksum
    must catch on the next read. Raising from the hook injects an error. *)

val set_injector : t -> (event -> verdict) option -> unit

val in_memory : ?page_size:int -> ?format:format -> unit -> t

val on_file : ?page_size:int -> ?format:format -> ?temp:bool -> string -> t
(** [on_file path] creates or truncates [path]. With [temp] (the default)
    the file is removed on {!close} — spill files are temporaries; pass
    [~temp:false] for a persistent store that {!reopen} can later see. *)

val reopen : ?page_size:int -> ?format:format -> string -> t
(** Open an existing page file without truncating — what recovery does
    after a crash. The page count is taken from the file size (rounded up,
    so a file truncated mid-page still addresses its torn last page and
    reading it raises {!Short_read}); the free list starts empty. The file
    is kept on {!close}. *)

val page_size : t -> int

val physical_page_size : t -> int
(** On-media bytes per page: [page_size] plus the {!V1} header. *)

val format : t -> format

val page_count : t -> int
(** High-water page count: every id ever allocated, including freed ones. *)

val live_page_count : t -> int
(** Currently allocated pages — {!page_count} minus the free list. This is
    the number external-sort leak tests gate on. *)

val is_free : t -> int -> bool
(** Is [id] on the free list (or out of range)? Recovery uses this to
    reclaim pages a crashed commit had allocated but never linked. *)

val allocate : t -> int
(** Allocate a zeroed page and return its id — a recycled free-list page
    (re-zeroed) when one exists, a fresh id otherwise. *)

val free : t -> int -> unit
(** Return a page to the free list. Raises [Invalid_argument] on bad ids or
    double frees. Callers holding pages in a {!Buffer_pool} must free
    through [Buffer_pool.free_page] so the resident frame is invalidated
    first. *)

val read_into : t -> int -> bytes -> unit
(** [read_into t id buf] fills [buf] (of length [page_size t]) with page
    [id]'s payload. Raises [Invalid_argument] on bad/freed ids or buffer
    sizes, {!Short_read} when the file backend comes up short, and — on
    {!V1} — {!Corruption} when the page fails checksum verification. A
    never-written page reads as all zeroes. *)

val write : t -> int -> bytes -> unit
(** [write t id buf] stores [buf] as page [id]'s payload, stamping and
    checksumming the header on {!V1}. *)

val page_lsn : t -> int -> int
(** The LSN stamped into a {!V1} page's header when it was last written
    (0 for unwritten pages and on {!V0}). Does not verify the checksum. *)

val sync : t -> unit
(** Durability barrier: [fsync] on the file backend, a no-op on the memory
    backend. Counted in {!Stats.t}[.syncs] either way. *)

val stats : t -> Stats.t
val close : t -> unit

(** {1 Directory durability}

    A rename (or file creation) is only durable once the parent
    directory itself is fsynced — the file's own fsync does not cover
    its {e name}. *)

val sync_dir : string -> unit
(** Open [path] (a directory) read-only and fsync it; soft-fails on
    filesystems that refuse directory fsync. Consults the
    {!set_dir_sync_hook} seam first. *)

val set_dir_sync_hook : (string -> unit) option -> unit
(** Install (or clear, with [None]) the fault-injection seam: the hook
    runs before each directory fsync and its exceptions propagate to the
    caller of {!sync_dir}. *)

val dir_sync_count : unit -> int
(** Process-wide count of {!sync_dir} calls — what the fault matrix
    asserts against. *)
