(** The disk layer: a flat, growable array of fixed-size pages.

    Two backends share one interface. [in_memory] keeps pages in an OCaml
    array — deterministic, fast, the default for tests. [on_file] keeps them
    in a real file accessed with [pread]/[pwrite]-style positioned I/O —
    used when a workload must exceed memory, and to make external-sort
    spills real. Either way, {!Stats.t} counts page transfers; every access
    is expected to go through {!Buffer_pool}, which is what turns the paper's
    512 MB / 8 KB page configuration into a knob.

    Freed pages ({!free}) go on a free list that {!allocate} reuses LIFO, so
    temporary structures (external-sort runs, spilled cuboids) do not grow
    the disk for the life of the process. Accessing a freed page raises. *)

type t

val default_page_size : int
(** 8192 bytes, the paper's TIMBER configuration. *)

val in_memory : ?page_size:int -> unit -> t

val on_file : ?page_size:int -> string -> t
(** [on_file path] creates or truncates [path]. The file is removed on
    {!close} (spill files are temporaries). *)

val page_size : t -> int

val page_count : t -> int
(** High-water page count: every id ever allocated, including freed ones. *)

val live_page_count : t -> int
(** Currently allocated pages — {!page_count} minus the free list. This is
    the number external-sort leak tests gate on. *)

val allocate : t -> int
(** Allocate a zeroed page and return its id — a recycled free-list page
    (re-zeroed) when one exists, a fresh id otherwise. *)

val free : t -> int -> unit
(** Return a page to the free list. Raises [Invalid_argument] on bad ids or
    double frees. Callers holding pages in a {!Buffer_pool} must free
    through [Buffer_pool.free_page] so the resident frame is invalidated
    first. *)

val read_into : t -> int -> bytes -> unit
(** [read_into t id buf] fills [buf] (of length [page_size t]) with page
    [id]. Raises [Invalid_argument] on bad/freed ids or buffer sizes, and
    [Failure] when the file backend returns a short read — every allocated
    page is materialised to full length, so a short read means the backing
    file was truncated and zero-filling would silently fabricate a blank
    page. *)

val write : t -> int -> bytes -> unit
(** [write t id buf] stores [buf] as page [id]. *)

val sync : t -> unit
(** Durability barrier: [fsync] on the file backend, a no-op on the memory
    backend. Counted in {!Stats.t}[.syncs] either way. *)

val stats : t -> Stats.t
val close : t -> unit
