(** Unordered record files over pooled pages.

    A heap file is a chain of pages holding length-prefixed records; it is
    how witness tables, spilled sort runs and materialised cuboids live on
    the (simulated or real) disk. Records never span pages, so a record is
    limited to [page_size - 6] bytes — ample for witness rows.

    Page layout: [u16 record-count | u16 free-offset | records...], each
    record being [u16 length | payload]. *)

type t

val create : Buffer_pool.t -> t
(** A new, empty heap file in the pool's disk. *)

val append : t -> string -> unit
(** Add one record at the end. Raises [Invalid_argument] if the record
    cannot fit on an empty page. *)

val free : t -> unit
(** Return every page to the pool's disk free list, leaving the file empty.
    Temporary files (external-sort runs, spilled intermediates) must be
    freed when consumed or the disk grows for the life of the pool. *)

val iter : (string -> unit) -> t -> unit
(** Scan every record in insertion order, touching pages through the
    pool. *)

val fold : ('a -> string -> 'a) -> 'a -> t -> 'a
val to_seq : t -> string Seq.t
(** Lazy scan. The sequence must be consumed before the pool's disk is
    closed. *)

val record_count : t -> int
val page_count : t -> int
val pool : t -> Buffer_pool.t

val capacity_bytes : t -> int
(** Largest record payload that fits on one (empty) page of this file. *)
