(** Write-ahead ingest log: checksummed, LSN-stamped records with group
    commit and torn-tail truncation on recovery.

    The log owns its {!Disk} (nothing else may allocate from it) and lays
    a record stream over sequential pages. [append] only buffers; [commit]
    writes every buffered record and issues {e one} [Disk.sync] — fsync
    batching, the group-commit contract. Each batch is padded to a page
    boundary so a synced page is never rewritten: a torn write can only
    hit bytes that were never acknowledged as durable.

    Recovery ({!open_disk} / {!open_file}) scans the stream and truncates
    at the last record that passes its length, CRC-32 and LSN-density
    checks: a crash mid-commit recovers to the exact state of the last
    completed commit, never a torn one. Because appends go through the
    disk layer, the {!Fault} injector covers every WAL write, sync and
    allocation for crash-at-every-write sweeps.

    Replay idempotence is by LSN: consumers record the highest LSN they
    have applied and {!replay} from there — applying the same prefix
    twice is the caller's bug, skipping by LSN is the protocol. *)

type t

type record = { lsn : int; payload : string }

val open_disk : Disk.t -> t
(** Recover a log over a caller-owned disk (tests; the memory backend).
    The disk must be dedicated to the WAL. {!close} leaves it open. *)

val open_file : ?page_size:int -> string -> t
(** Create (or reopen and recover) a file-backed log. The file is created
    if missing and is {e not} removed on {!close}. *)

val close : t -> unit

val append : t -> string -> int
(** Buffer one record and return its LSN. Nothing is durable until
    {!commit}. Raises [Invalid_argument] on an empty payload. *)

val commit : t -> unit
(** Write every buffered record and fsync once (no-op when nothing is
    pending). On return the batch is durable: {!durable_lsn} advances to
    the last appended LSN. *)

val last_lsn : t -> int
(** Highest LSN handed out (including uncommitted appends); 0 when the
    log is empty. *)

val durable_lsn : t -> int
(** Highest LSN known durable on disk. *)

val records : t -> record list
(** Every committed record, oldest first. *)

val replay : t -> after:int -> (record -> unit) -> unit
(** Apply every committed record with [lsn > after], oldest first — the
    warm-restart path: [after] is the snapshot's LSN. *)

val rescan : t -> (record list, string) result
(** Re-read and re-validate the stream from disk (exercises the codec;
    [Error] when the on-disk bytes no longer parse cleanly). *)

val batches : t -> int
(** Group-commit batches written so far (this process). *)

val record_count : t -> int

val dropped_bytes : t -> int
(** Torn bytes discarded by recovery at open (0 for a clean log). *)

val attach_metrics : t -> X3_obs.Metrics.t -> unit
(** Wire the log into a metrics registry. From now on [append] bumps
    [wal.appends] and [commit] bumps [wal.commits] / [wal.commit_bytes]
    (logical batch bytes, before page padding) and observes the
    [Disk.sync] latency on the [wal.latency.commit_fsync] histogram
    (seconds). Attaching also records the recovery story once:
    [wal.recovered_records] is bumped by the records found at open, and
    a torn-tail truncation bumps [wal.torn_tail_truncations] (plus
    [wal.torn_bytes_dropped] by the discarded byte count). *)
