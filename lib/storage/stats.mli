(** Substrate counters.

    The paper reports cold-cache wall-clock times that bundle I/O and CPU
    work; on different hardware the absolute seconds are meaningless, so
    every storage component also counts the events that drove those times.
    Benchmarks report both. *)

type t = {
  mutable page_reads : int;  (** pages fetched from the disk layer *)
  mutable page_writes : int;  (** pages written back to the disk layer *)
  mutable pages_allocated : int;  (** counts free-list reuse too *)
  mutable pages_freed : int;  (** pages returned to the disk free list *)
  mutable pool_hits : int;  (** buffer-pool lookups served from memory *)
  mutable pool_misses : int;
  mutable evictions : int;
  mutable syncs : int;  (** durability barriers requested ({!Disk.sync}) *)
  mutable sort_runs : int;  (** sorted runs spilled by external sorts *)
  mutable merge_passes : int;
  mutable records_sorted : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val copy : t -> t

val diff : later:t -> earlier:t -> t
(** [diff ~later ~earlier] is the per-field delta — use with two {!copy}
    snapshots of a live counter to attribute substrate work to the query
    that ran between them. *)

val pp : Format.formatter -> t -> unit
