(* Dual-slot shadow-header snapshot store. See the .mli for the protocol.

   Slot layout (within the page payload of pages 0 and 1):

     0  magic "X3SS"
     4  version       u16  (1)
     6  (pad)         u16
     8  epoch         u32
     12 first_page    u32  (0xFFFF_FFFF = empty chain)
     16 total_bytes   u32  (stream length across the chain)
     20 record_count  u32
     24 stream_crc    u32  (CRC-32 of the stream bytes, in chain order)
     28 slot_crc      u32  (CRC-32 of slot bytes 0..27)

   Chain page payload: [next u32][used u16][data ...]; records are a
   [u32 len][bytes] stream that may span page boundaries. *)

let slot_magic = "X3SS"
let slot_version = 1
let slot_bytes = 32
let no_page = 0xFFFF_FFFF

type meta = {
  epoch : int;
  first : int;  (* -1 for empty chain *)
  total_bytes : int;
  record_count : int;
  stream_crc : int;
}

type t = {
  pool : Buffer_pool.t;
  mutable committed : meta;
  mutable chain : int list;  (* committed chain pages, head first *)
}

let u32_get b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFF_FFFF
let u32_set b pos v = Bytes.set_int32_le b pos (Int32.of_int (v land 0xFFFF_FFFF))

let chain_header = 6
let chain_capacity pool = Disk.page_size (Buffer_pool.disk pool) - chain_header

let encode_slot buf meta =
  Bytes.blit_string slot_magic 0 buf 0 4;
  Bytes.set_uint16_le buf 4 slot_version;
  Bytes.set_uint16_le buf 6 0;
  u32_set buf 8 meta.epoch;
  u32_set buf 12 (if meta.first < 0 then no_page else meta.first);
  u32_set buf 16 meta.total_bytes;
  u32_set buf 20 meta.record_count;
  u32_set buf 24 meta.stream_crc;
  u32_set buf 28 (Crc32.digest buf ~pos:0 ~len:28)

let decode_slot buf =
  if Bytes.sub_string buf 0 4 <> slot_magic then Error "bad slot magic"
  else if Bytes.get_uint16_le buf 4 <> slot_version then
    Error (Printf.sprintf "unknown slot version %d" (Bytes.get_uint16_le buf 4))
  else if u32_get buf 28 <> Crc32.digest buf ~pos:0 ~len:28 then
    Error "slot checksum mismatch — torn header write"
  else
    let first = u32_get buf 12 in
    Ok
      {
        epoch = u32_get buf 8;
        first = (if first = no_page then -1 else first);
        total_bytes = u32_get buf 16;
        record_count = u32_get buf 20;
        stream_crc = u32_get buf 24;
      }

(* Walk a chain, returning (pages, stream) or an error. Guards against
   cycles, out-of-range links, links into the free list, and length
   mismatches, and verifies the stream CRC — a slot may be intact while
   its chain is not (only if the slot itself was corrupted into pointing
   somewhere stale, which the slot CRC makes vanishingly unlikely, but a
   recovery path verifies rather than trusts). *)
let walk_chain pool meta =
  let disk = Buffer_pool.disk pool in
  let stream = Buffer.create (max 64 meta.total_bytes) in
  let seen = Hashtbl.create 16 in
  let rec go pages page remaining =
    if page < 0 then
      if remaining = 0 then Ok (List.rev pages)
      else Error "chain ended before total_bytes"
    else if remaining <= 0 then Error "chain longer than total_bytes"
    else if Hashtbl.mem seen page then Error "cycle in page chain"
    else if Disk.is_free disk page then Error "chain links to a free page"
    else begin
      Hashtbl.add seen page ();
      (* Extract (next, used) and copy the data out before recursing — the
         recursion must not nest page accesses, or a chain longer than the
         pool's capacity pins every frame. *)
      let step =
        match
          Buffer_pool.with_page pool page (fun buf ->
              let next = u32_get buf 0 in
              let next = if next = no_page then -1 else next in
              let used = Bytes.get_uint16_le buf 4 in
              if used = 0 || used > remaining then
                Error
                  (Printf.sprintf
                     "chain page %d carries %d bytes, expected <= %d" page
                     used remaining)
              else begin
                Buffer.add_subbytes stream buf chain_header used;
                Ok (next, used)
              end)
        with
        | result -> result
        | exception Disk.Corruption { reason; _ } ->
            Error (Printf.sprintf "chain page %d corrupt: %s" page reason)
        | exception Disk.Short_read _ ->
            Error (Printf.sprintf "short read on chain page %d" page)
      in
      match step with
      | Error _ as e -> e
      | Ok (next, used) -> go (page :: pages) next (remaining - used)
    end
  in
  match go [] meta.first meta.total_bytes with
  | Error _ as e -> e
  | Ok pages ->
      let bytes = Buffer.to_bytes stream in
      if Crc32.digest bytes ~pos:0 ~len:(Bytes.length bytes) <> meta.stream_crc then
        Error "stream checksum mismatch"
      else Ok (pages, bytes)

let parse_records meta stream =
  let len = Bytes.length stream in
  let rec go acc pos n =
    if pos = len then
      if n = meta.record_count then Ok (List.rev acc)
      else Error "record count mismatch"
    else if pos + 4 > len then Error "truncated record length"
    else
      let rlen = u32_get stream pos in
      if pos + 4 + rlen > len then Error "truncated record"
      else go (Bytes.sub_string stream (pos + 4) rlen :: acc) (pos + 4 + rlen) (n + 1)
  in
  go [] 0 0

let empty_meta = { epoch = 0; first = -1; total_bytes = 0; record_count = 0;
                   stream_crc = 0 }

let slot_page meta = meta.epoch land 1

let write_slot pool meta =
  Buffer_pool.with_page_overwrite pool (slot_page meta) (fun buf ->
      encode_slot buf meta);
  Buffer_pool.flush pool

let create pool =
  if Disk.page_count (Buffer_pool.disk pool) <> 0 then
    invalid_arg "Snapshot_store.create: disk already has pages";
  if Disk.page_size (Buffer_pool.disk pool) < 2 * slot_bytes then
    invalid_arg "Snapshot_store.create: page size too small for header slots";
  let s0 = Buffer_pool.allocate pool in
  let s1 = Buffer_pool.allocate pool in
  assert (s0 = 0 && s1 = 1);
  write_slot pool empty_meta;
  { pool; committed = empty_meta; chain = [] }

let committed_epoch t = t.committed.epoch
let record_count t = t.committed.record_count
let read_stream t =
  match walk_chain t.pool t.committed with
  | Error msg -> failwith ("Snapshot_store.read: committed chain unreadable: " ^ msg)
  | Ok (_, stream) -> stream

let read t =
  match parse_records t.committed (read_stream t) with
  | Error msg -> failwith ("Snapshot_store.read: " ^ msg)
  | Ok records -> records

let verify t =
  match walk_chain t.pool t.committed with
  | Error _ as e -> e
  | Ok (_, stream) -> (
      match parse_records t.committed stream with
      | Error _ as e -> e
      | Ok _ -> Ok ())

let build_stream records =
  let buf = Buffer.create 256 in
  let scratch = Bytes.create 4 in
  List.iter
    (fun r ->
      u32_set scratch 0 (String.length r);
      Buffer.add_bytes buf scratch;
      Buffer.add_string buf r)
    records;
  Buffer.to_bytes buf

let commit t records =
  let stream = build_stream records in
  let total = Bytes.length stream in
  let cap = chain_capacity t.pool in
  let n_pages = (total + cap - 1) / cap in
  (* Phase 1: write the new chain on fresh pages. On a transient failure,
     give the pages back so nothing leaks. After a crash point the process
     is notionally dead: leave the free list alone — whether these pages
     became committed is a question only the media image can answer, and
     [recover] both decides it and reclaims whichever pages lost. *)
  let free_fresh pages = function
    | Fault.Crashed -> ()
    | _ ->
        Array.iter
          (fun id ->
            if id >= 0 then try Buffer_pool.free_page t.pool id with _ -> ())
          pages
  in
  let pages = Array.make n_pages (-1) in
  (try
     for i = 0 to n_pages - 1 do
       pages.(i) <- Buffer_pool.allocate t.pool
     done;
     for i = 0 to n_pages - 1 do
       let off = i * cap in
       let used = min cap (total - off) in
       let next = if i = n_pages - 1 then -1 else pages.(i + 1) in
       Buffer_pool.with_page_overwrite t.pool pages.(i) (fun buf ->
           u32_set buf 0 (if next < 0 then no_page else next);
           Bytes.set_uint16_le buf 4 used;
           Bytes.blit stream off buf chain_header used)
     done;
     (* New chain durable before the header that references it. *)
     Buffer_pool.flush t.pool
   with e ->
     free_fresh pages e;
     raise e);
  (* Phase 2: shadow header — overwrite the inactive slot, then sync. Only
     once this write is durable does the new epoch exist. *)
  let meta =
    {
      epoch = t.committed.epoch + 1;
      first = (if n_pages = 0 then -1 else pages.(0));
      total_bytes = total;
      record_count = List.length records;
      stream_crc = Crc32.digest stream ~pos:0 ~len:total;
    }
  in
  (try write_slot t.pool meta
   with e ->
     free_fresh pages e;
     raise e);
  (* Phase 3: the commit point has passed; retire the old chain. *)
  let old_chain = t.chain in
  t.committed <- meta;
  t.chain <- Array.to_list pages;
  List.iter (fun id -> Buffer_pool.free_page t.pool id) old_chain

let read_slot pool page =
  let disk = Buffer_pool.disk pool in
  if page >= Disk.page_count disk then Error "slot page missing"
  else
    match Buffer_pool.with_page pool page decode_slot with
    | result -> result
    | exception Disk.Corruption { reason; _ } -> Error reason
    | exception Disk.Short_read _ -> Error "short read on slot page"

let recover pool =
  (* The pool's frames are volatile state a crash destroys; recovery sees
     only the media image. *)
  Buffer_pool.invalidate pool;
  let try_slot meta =
    match walk_chain pool meta with
    | Error _ as e -> e
    | Ok (pages, stream) -> (
        match parse_records meta stream with
        | Error _ as e -> e
        | Ok _ -> Ok pages)
  in
  let candidates =
    List.filter_map
      (fun page ->
        match read_slot pool page with Ok m -> Some m | Error _ -> None)
      [ 0; 1 ]
    |> List.sort (fun a b -> compare b.epoch a.epoch)
  in
  let rec first_good = function
    | [] -> Error "Snapshot_store.recover: no header slot yields a consistent snapshot"
    | meta :: rest -> (
        match try_slot meta with
        | Ok pages ->
            (* Reclaim orphans: pages left allocated by a crashed commit —
               the losing epoch's chain, or a chain whose slot never made
               it down — are dead the moment a winner is chosen. *)
            let disk = Buffer_pool.disk pool in
            let live = Hashtbl.create 16 in
            List.iter (fun p -> Hashtbl.replace live p ()) (0 :: 1 :: pages);
            for id = 2 to Disk.page_count disk - 1 do
              if (not (Hashtbl.mem live id)) && not (Disk.is_free disk id)
              then Disk.free disk id
            done;
            Ok { pool; committed = meta; chain = pages }
        | Error _ -> first_good rest)
  in
  first_good candidates

(* --- one-shot file snapshots -------------------------------------------- *)
(* The serve daemon's warm-restart path wants "commit these records to a
   file" / "read them back, or say why not" without owning a disk and pool
   for the store's whole life.  Save writes a fresh store beside the target
   and renames it into place, so a crash mid-save leaves either the old
   snapshot or the new one — never a torn file; load goes through [recover]
   so every checksum (page, slot, stream) is verified before a record is
   believed. *)

let save_file ?page_size path records =
  let tmp = path ^ ".tmp" in
  match
    let disk = Disk.on_file ?page_size ~temp:false tmp in
    Fun.protect
      ~finally:(fun () -> Disk.close disk)
      (fun () -> commit (create (Buffer_pool.create disk)) records);
    Sys.rename tmp path;
    (* The rename is only durable once the parent directory's entry table
       is on media — fsyncing the file alone does not cover its name. *)
    Disk.sync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printexc.to_string e)

let load_file ?page_size path =
  if not (Sys.file_exists path) then Error (path ^ ": no snapshot file")
  else
    match
      let disk = Disk.reopen ?page_size path in
      Fun.protect
        ~finally:(fun () -> Disk.close disk)
        (fun () ->
          match recover (Buffer_pool.create disk) with
          | Ok t -> Ok (read t)
          | Error _ as e -> e)
    with
    | result -> result
    | exception e -> Error (Printexc.to_string e)
