(** Hybrid sorting, exactly as the paper configures it (§4): quicksort for
    in-memory sorts, external merge sort when the input exceeds the memory
    budget.

    An external sort quicksorts budget-sized runs, spills each run to a heap
    file, then merges runs [fanout] at a time until one remains; each merge
    frees its input runs ({!Heap_file.free}), so only the final output holds
    pages when the sort returns. Runs, merge passes and record counts are
    accumulated into the pool's {!Stats.t} — the top-down cube algorithms'
    "exponential number of external sorts" shows up there. *)

val default_fanout : int
(** 64-way merge. *)

val sort_records :
  pool:Buffer_pool.t ->
  budget_records:int ->
  ?fanout:int ->
  compare:(string -> string -> int) ->
  ((string -> unit) -> unit) ->
  Heap_file.t
(** [sort_records ~pool ~budget_records ~compare producer] feeds every
    record passed by [producer] (which is called once with an [emit]
    function) through the sort and returns a heap file in ascending order.
    [budget_records] bounds how many records are resident at once. *)

val sort_heap :
  pool:Buffer_pool.t ->
  budget_records:int ->
  ?fanout:int ->
  compare:(string -> string -> int) ->
  Heap_file.t ->
  Heap_file.t
(** Sort an existing heap file into a new one. *)

val sorted_array :
  compare:(string -> string -> int) -> string array -> string array
(** Purely in-memory convenience (copies, then quicksorts). *)
