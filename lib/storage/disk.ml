let default_page_size = 8192

(* --- versioned page format --------------------------------------------- *)
(* V1 pages carry a 16-byte physical header in front of the payload:

     offset  size  field
     0       4     magic "X3PG"
     4       2     format version (1)
     6       2     flags (zero, reserved)
     8       4     LSN — the disk's write counter when the page was written
     12      4     CRC-32 over magic..lsn and the payload

   The header is invisible to callers: [page_size] is the payload size and
   [read_into]/[write] translate. A page whose header is all zeroes has
   never been written (fresh allocations, re-zeroed recycled pages) and
   reads as an all-zero payload; anything else must carry a valid magic,
   version and checksum or [read_into] raises {!Corruption} instead of
   decoding a torn or rotten page into garbage. V0 is the seed's headerless
   format, kept for legacy fixtures and as the checksum-overhead baseline. *)

type format = V0 | V1

let header_bytes = 16
let magic = "X3PG"
let version = 1

exception Corruption of { page : int; reason : string }
exception Short_read of { page : int; got : int; want : int }

type event = Read of int | Write of int | Sync | Allocate
type verdict = Proceed | Torn of int

let () =
  Printexc.register_printer (function
    | Corruption { page; reason } ->
        Some (Printf.sprintf "Disk.Corruption(page %d: %s)" page reason)
    | Short_read { page; got; want } ->
        Some
          (Printf.sprintf "Disk.Short_read(page %d: %d of %d bytes)" page got
             want)
    | _ -> None)

type backend =
  | Memory of bytes array ref
  | File of { fd : Unix.file_descr; path : string; temp : bool }

type t = {
  page_size : int;  (** payload bytes callers see *)
  physical : int;  (** on-media page size: payload + header on V1 *)
  format : format;
  mutable lsn : int;  (** monotonic write counter, stamped into V1 headers *)
  mutable pages : int;  (** address-space high-water mark *)
  mutable free_list : int list;  (** freed ids, reused LIFO by [allocate] *)
  freed : (int, unit) Hashtbl.t;  (** members of [free_list] *)
  backend : backend;
  stats : Stats.t;
  mutable closed : bool;
  mutable injector : (event -> verdict) option;
  scratch : bytes;  (** staging buffer for one physical page *)
}

let physical_of format page_size =
  match format with V0 -> page_size | V1 -> page_size + header_bytes

let make ?(page_size = default_page_size) ?(format = V1) ~pages backend =
  let physical = physical_of format page_size in
  {
    page_size;
    physical;
    format;
    lsn = 0;
    pages;
    free_list = [];
    freed = Hashtbl.create 16;
    backend;
    stats = Stats.create ();
    closed = false;
    injector = None;
    scratch = Bytes.make physical '\000';
  }

let in_memory ?page_size ?format () =
  make ?page_size ?format ~pages:0 (Memory (ref [||]))

let on_file ?page_size ?format ?(temp = true) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  make ?page_size ?format ~pages:0 (File { fd; path; temp })

let reopen ?(page_size = default_page_size) ?(format = V1) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let size = (Unix.fstat fd).Unix.st_size in
  let physical = physical_of format page_size in
  (* Round up: a file truncated mid-page still addresses its torn last
     page, whose read then raises [Short_read] rather than vanishing. *)
  let pages = (size + physical - 1) / physical in
  make ~page_size ~format ~pages (File { fd; path; temp = false })

let page_size t = t.page_size
let physical_page_size t = t.physical
let format t = t.format
let page_count t = t.pages
let live_page_count t = t.pages - List.length t.free_list
let is_free t id = id < 0 || id >= t.pages || Hashtbl.mem t.freed id
let stats t = t.stats
let set_injector t injector = t.injector <- injector

let fire t event =
  match t.injector with None -> Proceed | Some f -> f event

let check_open t = if t.closed then invalid_arg "Disk: already closed"

let check_id t id =
  if id < 0 || id >= t.pages then
    invalid_arg (Printf.sprintf "Disk: page %d out of range [0, %d)" id t.pages);
  if Hashtbl.mem t.freed id then
    invalid_arg (Printf.sprintf "Disk: page %d is freed" id)

let really_write fd buf len =
  let rec go off =
    if off < len then begin
      let n = Unix.write fd buf off (len - off) in
      go (off + n)
    end
  in
  go 0

let seek_page fd t id =
  ignore
    (Unix.LargeFile.lseek fd (Int64.of_int (id * t.physical)) Unix.SEEK_SET)

let zero_page t id =
  match t.backend with
  | Memory store -> !store.(id) <- Bytes.make t.physical '\000'
  | File { fd; _ } ->
      seek_page fd t id;
      really_write fd (Bytes.make t.physical '\000') t.physical

let allocate t =
  check_open t;
  (match fire t Allocate with Proceed | Torn _ -> ());
  t.stats.pages_allocated <- t.stats.pages_allocated + 1;
  match t.free_list with
  | id :: rest ->
      (* Reuse a freed page; re-zero it so the "allocate returns a zeroed
         page" contract survives recycling (an all-zero header also marks
         the page unwritten for the V1 reader). *)
      t.free_list <- rest;
      Hashtbl.remove t.freed id;
      zero_page t id;
      id
  | [] ->
      let id = t.pages in
      t.pages <- t.pages + 1;
      (match t.backend with
      | Memory store ->
          let old = !store in
          if id >= Array.length old then begin
            let grown =
              Array.make (max 64 (2 * Array.length old)) Bytes.empty
            in
            Array.blit old 0 grown 0 (Array.length old);
            store := grown
          end;
          !store.(id) <- Bytes.make t.physical '\000'
      | File { fd; _ } ->
          (* Extend the file so positioned reads of fresh pages succeed. *)
          ignore (Unix.LargeFile.lseek fd
                    (Int64.of_int (((id + 1) * t.physical) - 1))
                    Unix.SEEK_SET);
          ignore (Unix.write fd (Bytes.make 1 '\000') 0 1));
      id

let free t id =
  check_open t;
  check_id t id;
  (* Release the backing store eagerly on the memory backend so a freed
     page's bytes are reclaimable (and use-after-free is detectable). *)
  (match t.backend with
  | Memory store -> !store.(id) <- Bytes.empty
  | File _ -> ());
  t.free_list <- id :: t.free_list;
  Hashtbl.replace t.freed id ();
  t.stats.pages_freed <- t.stats.pages_freed + 1

(* [allocate] materialises every page up to the end of its id's extent, so a
   short read of any valid page means the backing file was truncated or
   corrupted — zero-filling would silently return a blank page where real
   data should be. *)
let really_read fd ~page buf len =
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then raise (Short_read { page; got = off; want = len })
      else go (off + n)
    end
  in
  go 0

(* --- V1 header codec --------------------------------------------------- *)

let get_u32 buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let set_u32 buf off v =
  Bytes.set buf off (Char.chr (v land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set buf (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let get_u16 buf off =
  Char.code (Bytes.get buf off) lor (Char.code (Bytes.get buf (off + 1)) lsl 8)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr (v land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xFF))

(* The page checksum covers magic, version, flags and LSN (bytes 0-11) plus
   the payload — everything but the CRC field itself. *)
let page_crc t =
  Crc32.update
    (Crc32.digest t.scratch ~pos:0 ~len:12)
    t.scratch ~pos:header_bytes
    ~len:(t.physical - header_bytes)

let header_is_zero t =
  let rec go i = i >= header_bytes || (Bytes.get t.scratch i = '\000' && go (i + 1)) in
  go 0

let encode_header t =
  t.lsn <- t.lsn + 1;
  Bytes.blit_string magic 0 t.scratch 0 4;
  set_u16 t.scratch 4 version;
  set_u16 t.scratch 6 0;
  set_u32 t.scratch 8 (t.lsn land 0xFFFFFFFF);
  set_u32 t.scratch 12 0;
  set_u32 t.scratch 12 (page_crc t)

let decode_header t ~page buf =
  if header_is_zero t then
    (* Never written: the payload is the zero page [allocate] promised. *)
    Bytes.fill buf 0 t.page_size '\000'
  else begin
    if Bytes.sub_string t.scratch 0 4 <> magic then
      raise
        (Corruption { page; reason = "bad magic — not a versioned page" });
    let v = get_u16 t.scratch 4 in
    if v <> version then
      raise
        (Corruption
           { page; reason = Printf.sprintf "unknown page version %d" v });
    let stored = get_u32 t.scratch 12 in
    set_u32 t.scratch 12 0;
    let computed = page_crc t in
    set_u32 t.scratch 12 stored;
    if stored <> computed then
      raise
        (Corruption
           {
             page;
             reason =
               Printf.sprintf
                 "checksum mismatch (stored %08x, computed %08x) — torn \
                  write or bit rot"
                 stored computed;
           });
    Bytes.blit t.scratch header_bytes buf 0 t.page_size
  end

let read_physical t id =
  match t.backend with
  | Memory store -> Bytes.blit !store.(id) 0 t.scratch 0 t.physical
  | File { fd; _ } ->
      seek_page fd t id;
      really_read fd ~page:id t.scratch t.physical

let write_physical t id len =
  match t.backend with
  | Memory store -> Bytes.blit t.scratch 0 !store.(id) 0 len
  | File { fd; _ } ->
      seek_page fd t id;
      really_write fd t.scratch len

let read_into t id buf =
  check_open t;
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Disk.read_into: buffer size mismatch";
  (match fire t (Read id) with Proceed | Torn _ -> ());
  t.stats.page_reads <- t.stats.page_reads + 1;
  match t.format with
  | V0 -> (
      match t.backend with
      | Memory store -> Bytes.blit !store.(id) 0 buf 0 t.page_size
      | File { fd; _ } ->
          seek_page fd t id;
          really_read fd ~page:id buf t.page_size)
  | V1 ->
      read_physical t id;
      decode_header t ~page:id buf

let write t id buf =
  check_open t;
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Disk.write: buffer size mismatch";
  let verdict = fire t (Write id) in
  t.stats.page_writes <- t.stats.page_writes + 1;
  match t.format with
  | V0 -> (
      let len =
        match verdict with
        | Proceed -> t.page_size
        | Torn n -> max 0 (min n t.page_size)
      in
      match t.backend with
      | Memory store -> Bytes.blit buf 0 !store.(id) 0 len
      | File { fd; _ } ->
          seek_page fd t id;
          really_write fd (Bytes.sub buf 0 len) len)
  | V1 ->
      Bytes.blit buf 0 t.scratch header_bytes t.page_size;
      encode_header t;
      let len =
        match verdict with
        | Proceed -> t.physical
        | Torn n -> max 0 (min n t.physical)
      in
      write_physical t id len

let page_lsn t id =
  check_open t;
  check_id t id;
  match t.format with
  | V0 -> 0
  | V1 ->
      read_physical t id;
      if header_is_zero t then 0 else get_u32 t.scratch 8

let sync t =
  check_open t;
  (match fire t Sync with Proceed | Torn _ -> ());
  t.stats.syncs <- t.stats.syncs + 1;
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } -> Unix.fsync fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with
    | Memory store -> store := [||]
    | File { fd; path; temp } ->
        Unix.close fd;
        if temp then try Sys.remove path with Sys_error _ -> ()
  end

(* --- directory durability ----------------------------------------------- *)

(* A rename is only durable once the parent directory's entry table is on
   media; fsyncing the renamed file alone leaves the {e name} at the mercy
   of power loss. The hook is the fault-injection seam: tests install one
   to observe or fail the directory sync (it runs before the syscall and
   its exceptions propagate). *)

let dir_sync_hook : (string -> unit) option ref = ref None
let set_dir_sync_hook h = dir_sync_hook := h
let dir_syncs = ref 0

let sync_dir path =
  (match !dir_sync_hook with None -> () | Some f -> f path);
  incr dir_syncs;
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Some filesystems refuse fsync on a directory fd (EINVAL);
             there is nothing further to do there. *)
          try Unix.fsync fd with Unix.Unix_error _ -> ())

let dir_sync_count () = !dir_syncs
