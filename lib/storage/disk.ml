let default_page_size = 8192

type backend =
  | Memory of bytes array ref
  | File of { fd : Unix.file_descr; path : string }

type t = {
  page_size : int;
  mutable pages : int;  (** address-space high-water mark *)
  mutable free_list : int list;  (** freed ids, reused LIFO by [allocate] *)
  freed : (int, unit) Hashtbl.t;  (** members of [free_list] *)
  backend : backend;
  stats : Stats.t;
  mutable closed : bool;
}

let in_memory ?(page_size = default_page_size) () =
  {
    page_size;
    pages = 0;
    free_list = [];
    freed = Hashtbl.create 16;
    backend = Memory (ref [||]);
    stats = Stats.create ();
    closed = false;
  }

let on_file ?(page_size = default_page_size) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  {
    page_size;
    pages = 0;
    free_list = [];
    freed = Hashtbl.create 16;
    backend = File { fd; path };
    stats = Stats.create ();
    closed = false;
  }

let page_size t = t.page_size
let page_count t = t.pages
let live_page_count t = t.pages - List.length t.free_list
let stats t = t.stats

let check_open t = if t.closed then invalid_arg "Disk: already closed"

let check_id t id =
  if id < 0 || id >= t.pages then
    invalid_arg (Printf.sprintf "Disk: page %d out of range [0, %d)" id t.pages);
  if Hashtbl.mem t.freed id then
    invalid_arg (Printf.sprintf "Disk: page %d is freed" id)

let really_write fd buf len =
  let rec go off =
    if off < len then begin
      let n = Unix.write fd buf off (len - off) in
      go (off + n)
    end
  in
  go 0

let seek_page fd t id =
  ignore
    (Unix.LargeFile.lseek fd (Int64.of_int (id * t.page_size)) Unix.SEEK_SET)

let zero_page t id =
  match t.backend with
  | Memory store -> !store.(id) <- Bytes.make t.page_size '\000'
  | File { fd; _ } ->
      seek_page fd t id;
      really_write fd (Bytes.make t.page_size '\000') t.page_size

let allocate t =
  check_open t;
  t.stats.pages_allocated <- t.stats.pages_allocated + 1;
  match t.free_list with
  | id :: rest ->
      (* Reuse a freed page; re-zero it so the "allocate returns a zeroed
         page" contract survives recycling. *)
      t.free_list <- rest;
      Hashtbl.remove t.freed id;
      zero_page t id;
      id
  | [] ->
      let id = t.pages in
      t.pages <- t.pages + 1;
      (match t.backend with
      | Memory store ->
          let old = !store in
          if id >= Array.length old then begin
            let grown =
              Array.make (max 64 (2 * Array.length old)) Bytes.empty
            in
            Array.blit old 0 grown 0 (Array.length old);
            store := grown
          end;
          !store.(id) <- Bytes.make t.page_size '\000'
      | File { fd; _ } ->
          (* Extend the file so positioned reads of fresh pages succeed. *)
          ignore (Unix.LargeFile.lseek fd
                    (Int64.of_int ((id + 1) * t.page_size - 1))
                    Unix.SEEK_SET);
          ignore (Unix.write fd (Bytes.make 1 '\000') 0 1));
      id

let free t id =
  check_open t;
  check_id t id;
  (* Release the backing store eagerly on the memory backend so a freed
     page's bytes are reclaimable (and use-after-free is detectable). *)
  (match t.backend with
  | Memory store -> !store.(id) <- Bytes.empty
  | File _ -> ());
  t.free_list <- id :: t.free_list;
  Hashtbl.replace t.freed id ();
  t.stats.pages_freed <- t.stats.pages_freed + 1

(* [allocate] materialises every page up to the end of its id's extent, so a
   short read of any valid page means the backing file was truncated or
   corrupted — zero-filling would silently return a blank page where real
   data should be. *)
let really_read fd ~page buf len =
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then
        failwith
          (Printf.sprintf
             "Disk: short read of page %d (%d of %d bytes) — backing file \
              truncated?"
             page off len)
      else go (off + n)
    end
  in
  go 0

let read_into t id buf =
  check_open t;
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Disk.read_into: buffer size mismatch";
  t.stats.page_reads <- t.stats.page_reads + 1;
  match t.backend with
  | Memory store -> Bytes.blit !store.(id) 0 buf 0 t.page_size
  | File { fd; _ } ->
      seek_page fd t id;
      really_read fd ~page:id buf t.page_size

let write t id buf =
  check_open t;
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Disk.write: buffer size mismatch";
  t.stats.page_writes <- t.stats.page_writes + 1;
  match t.backend with
  | Memory store -> Bytes.blit buf 0 !store.(id) 0 t.page_size
  | File { fd; _ } ->
      seek_page fd t id;
      really_write fd buf t.page_size

let sync t =
  check_open t;
  t.stats.syncs <- t.stats.syncs + 1;
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } -> Unix.fsync fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with
    | Memory store -> store := [||]
    | File { fd; path } ->
        Unix.close fd;
        (try Sys.remove path with Sys_error _ -> ())
  end
