(* Deterministic fault injection over a Disk backend.

   A plan is a set of rules consulted on every disk event (via
   Disk.set_injector): fail the Nth read/write/sync/allocate, return short
   reads, inject seeded pseudo-random transient errors, or "crash" — after
   the Nth write every subsequent operation raises and the pre-crash media
   image is what recovery sees. Plans carry their own op counters, so a
   fresh plan replays identically: fault schedules are part of a test's
   inputs, not its environment. *)

type error_class = Read_error | Write_error | Sync_error | Enospc | Short_read

exception Injected of { cls : error_class; page : int }
exception Crashed

let () =
  Printexc.register_printer (function
    | Injected { cls; page } ->
        let name =
          match cls with
          | Read_error -> "read"
          | Write_error -> "write"
          | Sync_error -> "sync"
          | Enospc -> "enospc"
          | Short_read -> "short-read"
        in
        Some (Printf.sprintf "Fault.Injected(%s, page %d)" name page)
    | Crashed -> Some "Fault.Crashed"
    | _ -> None)

type rule =
  | Fail_nth of { cls : error_class; n : int }
  | Crash_after_writes of { n : int; torn : bool }
  | Seeded of { classes : error_class list; rate : float; mutable state : int64 }

type t = {
  rules : rule list;
  mutable reads : int;
  mutable writes : int;
  mutable syncs : int;
  mutable allocs : int;
  mutable crashed : bool;
  mutable injected : int;
}

let of_rules rules =
  { rules; reads = 0; writes = 0; syncs = 0; allocs = 0;
    crashed = false; injected = 0 }

let fail_nth cls n =
  if n < 1 then invalid_arg "Fault.fail_nth: n must be >= 1";
  of_rules [ Fail_nth { cls; n } ]

let fail_nth_read n = fail_nth Read_error n
let fail_nth_write n = fail_nth Write_error n
let fail_nth_sync n = fail_nth Sync_error n
let enospc_on_allocate n = fail_nth Enospc n
let short_read_nth n = fail_nth Short_read n

let crash_after_writes ?(torn = false) n =
  if n < 0 then invalid_arg "Fault.crash_after_writes: n must be >= 0";
  of_rules [ Crash_after_writes { n; torn } ]

let seeded ~seed ~rate classes =
  if rate < 0. || rate > 1. then invalid_arg "Fault.seeded: rate in [0,1]";
  of_rules [ Seeded { classes; rate; state = Int64.of_int (seed lxor 0x9E3779B9) } ]

let combine plans = of_rules (List.concat_map (fun p -> p.rules) plans)

let crashed t = t.crashed
let injected_faults t = t.injected
let writes_seen t = t.writes

(* splitmix64: one 64-bit draw per matching event, fully determined by the
   seed and the event sequence. *)
let draw st =
  let z = Int64.add st.contents 0x9E3779B97F4A7C15L in
  st := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let class_matches cls (event : Disk.event) =
  match (cls, event) with
  | (Read_error | Short_read), Disk.Read _ -> true
  | Write_error, Disk.Write _ -> true
  | Sync_error, Disk.Sync -> true
  | Enospc, Disk.Allocate -> true
  | _ -> false

let page_of = function
  | Disk.Read p | Disk.Write p -> p
  | Disk.Sync | Disk.Allocate -> -1

let inject t disk cls ~page =
  t.injected <- t.injected + 1;
  match cls with
  | Short_read ->
      raise
        (Disk.Short_read
           { page; got = 0; want = Disk.physical_page_size disk })
  | cls -> raise (Injected { cls; page })

let handle t disk event =
  if t.crashed then raise Crashed;
  let count =
    match event with
    | Disk.Read _ ->
        t.reads <- t.reads + 1;
        t.reads
    | Disk.Write _ ->
        t.writes <- t.writes + 1;
        t.writes
    | Disk.Sync ->
        t.syncs <- t.syncs + 1;
        t.syncs
    | Disk.Allocate ->
        t.allocs <- t.allocs + 1;
        t.allocs
  in
  let verdict = ref Disk.Proceed in
  List.iter
    (fun rule ->
      match rule with
      | Fail_nth { cls; n } ->
          if class_matches cls event && count = n then
            inject t disk cls ~page:(page_of event)
      | Crash_after_writes { n; torn } -> (
          match event with
          | Disk.Write _ when t.writes = n + 1 ->
              (* The crashing write: dropped entirely, or torn mid-page —
                 either way nothing after it reaches the media. *)
              t.crashed <- true;
              if torn then
                verdict := Disk.Torn (Disk.physical_page_size disk / 2)
              else raise Crashed
          | _ -> ())
      | Seeded s ->
          List.iter
            (fun cls ->
              if class_matches cls event then begin
                let st = ref s.state in
                let x = draw st in
                s.state <- !st;
                if x < s.rate then inject t disk cls ~page:(page_of event)
              end)
            s.classes)
    t.rules;
  !verdict

let install t disk = Disk.set_injector disk (Some (handle t disk))
let clear disk = Disk.set_injector disk None
