type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable pages_allocated : int;
  mutable pages_freed : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable evictions : int;
  mutable syncs : int;
  mutable sort_runs : int;
  mutable merge_passes : int;
  mutable records_sorted : int;
}

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    pages_allocated = 0;
    pages_freed = 0;
    pool_hits = 0;
    pool_misses = 0;
    evictions = 0;
    syncs = 0;
    sort_runs = 0;
    merge_passes = 0;
    records_sorted = 0;
  }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.pages_allocated <- 0;
  t.pages_freed <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0;
  t.evictions <- 0;
  t.syncs <- 0;
  t.sort_runs <- 0;
  t.merge_passes <- 0;
  t.records_sorted <- 0

let add acc x =
  acc.page_reads <- acc.page_reads + x.page_reads;
  acc.page_writes <- acc.page_writes + x.page_writes;
  acc.pages_allocated <- acc.pages_allocated + x.pages_allocated;
  acc.pages_freed <- acc.pages_freed + x.pages_freed;
  acc.pool_hits <- acc.pool_hits + x.pool_hits;
  acc.pool_misses <- acc.pool_misses + x.pool_misses;
  acc.evictions <- acc.evictions + x.evictions;
  acc.syncs <- acc.syncs + x.syncs;
  acc.sort_runs <- acc.sort_runs + x.sort_runs;
  acc.merge_passes <- acc.merge_passes + x.merge_passes;
  acc.records_sorted <- acc.records_sorted + x.records_sorted

let diff ~later ~earlier =
  {
    page_reads = later.page_reads - earlier.page_reads;
    page_writes = later.page_writes - earlier.page_writes;
    pages_allocated = later.pages_allocated - earlier.pages_allocated;
    pages_freed = later.pages_freed - earlier.pages_freed;
    pool_hits = later.pool_hits - earlier.pool_hits;
    pool_misses = later.pool_misses - earlier.pool_misses;
    evictions = later.evictions - earlier.evictions;
    syncs = later.syncs - earlier.syncs;
    sort_runs = later.sort_runs - earlier.sort_runs;
    merge_passes = later.merge_passes - earlier.merge_passes;
    records_sorted = later.records_sorted - earlier.records_sorted;
  }

let copy t =
  let c = create () in
  add c t;
  c

let pp ppf t =
  Format.fprintf ppf
    "@[<h>reads=%d writes=%d alloc=%d freed=%d hits=%d misses=%d evict=%d \
     syncs=%d runs=%d merges=%d sorted=%d@]"
    t.page_reads t.page_writes t.pages_allocated t.pages_freed t.pool_hits
    t.pool_misses t.evictions t.syncs t.sort_runs t.merge_passes
    t.records_sorted
