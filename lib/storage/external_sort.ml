module Trace = X3_obs.Trace

let default_fanout = 64

let stats_of pool = Buffer_pool.stats pool

let spill_run ~pool ~compare buffer size =
  Trace.with_span "sort.run" ~attrs:[ ("records", Trace.Int size) ] (fun () ->
      Quicksort.sort_sub ~compare buffer ~pos:0 ~len:size;
      let run = Heap_file.create pool in
      for i = 0 to size - 1 do
        Heap_file.append run buffer.(i)
      done;
      (stats_of pool).sort_runs <- (stats_of pool).sort_runs + 1;
      run)

(* Merge a batch of sorted runs into one sorted run. *)
let merge_runs ~pool ~compare runs =
  let out = Heap_file.create pool in
  let heap =
    Min_heap.create ~compare:(fun (a, _) (b, _) -> compare a b)
  in
  let cursors = Array.of_list (List.map Heap_file.to_seq runs) in
  Array.iteri
    (fun i seq ->
      match seq () with
      | Seq.Nil -> ()
      | Seq.Cons (r, rest) ->
          cursors.(i) <- rest;
          Min_heap.push heap (r, i))
    cursors;
  let rec drain () =
    match Min_heap.pop heap with
    | None -> ()
    | Some (r, i) ->
        Heap_file.append out r;
        (match cursors.(i) () with
        | Seq.Nil -> ()
        | Seq.Cons (r', rest) ->
            cursors.(i) <- rest;
            Min_heap.push heap (r', i));
        drain ()
  in
  drain ();
  (* The input runs are fully consumed intermediates: return their pages to
     the free list, or every merge pass permanently grows the disk. *)
  List.iter Heap_file.free runs;
  out

let rec merge_all ~pool ~compare ~fanout runs =
  match runs with
  | [] -> Heap_file.create pool
  | [ only ] -> only
  | _ ->
      (stats_of pool).merge_passes <- (stats_of pool).merge_passes + 1;
      let merged =
        Trace.with_span "sort.merge_pass"
          ~attrs:[ ("runs", Trace.Int (List.length runs)) ]
          (fun () ->
            let rec batches acc current n = function
              | [] ->
                  List.rev (merge_runs ~pool ~compare (List.rev current) :: acc)
              | run :: rest ->
                  if n = fanout then
                    batches
                      (merge_runs ~pool ~compare (List.rev current) :: acc)
                      [ run ] 1 rest
                  else batches acc (run :: current) (n + 1) rest
            in
            match runs with
            | first :: rest -> batches [] [ first ] 1 rest
            | [] -> assert false)
      in
      merge_all ~pool ~compare ~fanout merged

let sort_records ~pool ~budget_records ?(fanout = default_fanout) ~compare
    producer =
  if budget_records < 1 then invalid_arg "External_sort: empty budget";
  if fanout < 2 then invalid_arg "External_sort: fanout must be at least 2";
  let buffer = Array.make budget_records "" in
  let size = ref 0 in
  let runs = ref [] in
  let total = ref 0 in
  producer (fun record ->
      incr total;
      if !size = budget_records then begin
        runs := spill_run ~pool ~compare buffer !size :: !runs;
        size := 0
      end;
      buffer.(!size) <- record;
      incr size);
  (stats_of pool).records_sorted <- (stats_of pool).records_sorted + !total;
  match !runs with
  | [] ->
      (* Everything fit: a single in-memory quicksort, no run accounting —
         this is the paper's "quicksort for an in-memory sort" path. *)
      Quicksort.sort_sub ~compare buffer ~pos:0 ~len:!size;
      let out = Heap_file.create pool in
      for i = 0 to !size - 1 do
        Heap_file.append out buffer.(i)
      done;
      out
  | spilled ->
      let spilled =
        if !size > 0 then spill_run ~pool ~compare buffer !size :: spilled
        else spilled
      in
      merge_all ~pool ~compare ~fanout (List.rev spilled)

let sort_heap ~pool ~budget_records ?fanout ~compare heap =
  sort_records ~pool ~budget_records ?fanout ~compare (fun emit ->
      Heap_file.iter emit heap)

let sorted_array ~compare records =
  let copy = Array.copy records in
  Quicksort.sort ~compare copy;
  copy
