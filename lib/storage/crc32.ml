(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   Used by the versioned page format to detect torn writes and bit rot —
   the checksum must be cheap enough to run on every page transfer, and a
   256-entry table keeps the inner loop to one xor + one lookup per byte. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest buf ~pos ~len = update 0 buf ~pos ~len

let string s =
  let b = Bytes.unsafe_of_string s in
  digest b ~pos:0 ~len:(Bytes.length b)
