type t = {
  pool : Buffer_pool.t;
  mutable pages : int list;  (** reverse chain: head = last page *)
  mutable page_order : int array option;  (** memoised forward order *)
  mutable records : int;
}

let header_bytes = 4
let record_header_bytes = 2

let create pool = { pool; pages = []; page_order = None; records = 0 }
let pool t = t.pool
let record_count t = t.records
let page_count t = List.length t.pages

let get_u16 buf off = Char.code (Bytes.get buf off) lor (Char.code (Bytes.get buf (off + 1)) lsl 8)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr (v land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let capacity pool = Disk.page_size (Buffer_pool.disk pool) - header_bytes

(* Largest record that fits one page of this file's pool. *)
let capacity_bytes t = capacity t.pool - record_header_bytes

let append t record =
  let len = String.length record in
  if len + record_header_bytes > capacity t.pool then
    invalid_arg
      (Printf.sprintf "Heap_file.append: record of %d bytes exceeds page" len);
  let page_size = Disk.page_size (Buffer_pool.disk t.pool) in
  let write_into page =
    Buffer_pool.with_page_mut t.pool page (fun buf ->
        let free = get_u16 buf 2 in
        if free + record_header_bytes + len > page_size then false
        else begin
          set_u16 buf free len;
          Bytes.blit_string record 0 buf (free + record_header_bytes) len;
          set_u16 buf 0 (get_u16 buf 0 + 1);
          set_u16 buf 2 (free + record_header_bytes + len);
          true
        end)
  in
  let appended =
    match t.pages with [] -> false | page :: _ -> write_into page
  in
  if not appended then begin
    let page = Buffer_pool.allocate t.pool in
    Buffer_pool.with_page_mut t.pool page (fun buf ->
        set_u16 buf 0 0;
        set_u16 buf 2 header_bytes);
    t.pages <- page :: t.pages;
    t.page_order <- None;
    if not (write_into page) then assert false
  end;
  t.records <- t.records + 1

let free t =
  List.iter (Buffer_pool.free_page t.pool) t.pages;
  t.pages <- [];
  t.page_order <- None;
  t.records <- 0

let forward_pages t =
  match t.page_order with
  | Some order -> order
  | None ->
      let order = Array.of_list (List.rev t.pages) in
      t.page_order <- Some order;
      order

let iter f t =
  let order = forward_pages t in
  Array.iter
    (fun page ->
      (* Copy the records out before calling [f]: the callback may touch
         other pages and evict this frame. *)
      let records =
        Buffer_pool.with_page t.pool page (fun buf ->
            let count = get_u16 buf 0 in
            let rec collect acc off remaining =
              if remaining = 0 then List.rev acc
              else begin
                let len = get_u16 buf off in
                let record =
                  Bytes.sub_string buf (off + record_header_bytes) len
                in
                collect (record :: acc)
                  (off + record_header_bytes + len)
                  (remaining - 1)
              end
            in
            collect [] header_bytes count)
      in
      List.iter f records)
    order

let fold f init t =
  let acc = ref init in
  iter (fun record -> acc := f !acc record) t;
  !acc

let to_seq t =
  let order = forward_pages t in
  let page_records page =
    Buffer_pool.with_page t.pool page (fun buf ->
        let count = get_u16 buf 0 in
        let rec collect acc off remaining =
          if remaining = 0 then List.rev acc
          else begin
            let len = get_u16 buf off in
            let record = Bytes.sub_string buf (off + record_header_bytes) len in
            collect (record :: acc) (off + record_header_bytes + len)
              (remaining - 1)
          end
        in
        collect [] header_bytes count)
  in
  let rec pages i () =
    if i >= Array.length order then Seq.Nil
    else begin
      let records = page_records order.(i) in
      let rec emit = function
        | [] -> pages (i + 1) ()
        | r :: rest -> Seq.Cons (r, fun () -> emit rest)
      in
      emit records
    end
  in
  pages 0
