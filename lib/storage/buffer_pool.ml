type frame = {
  buf : bytes;
  mutable page : int;  (** -1 when the frame is free *)
  mutable dirty : bool;
  mutable referenced : bool;  (** clock second-chance bit *)
  mutable pins : int;  (** live [with_page]/[with_page_mut] windows *)
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : frame array;  (** grown lazily up to [capacity] *)
  mutable used : int;  (** frames currently initialised *)
  table : (int, int) Hashtbl.t;  (** page id -> frame index *)
  mutable hand : int;  (** clock hand over [frames] *)
  stats : Stats.t;
}

let create ?(capacity_pages = 65536) disk =
  if capacity_pages < 1 then invalid_arg "Buffer_pool.create: empty pool";
  {
    disk;
    capacity = capacity_pages;
    frames =
      Array.init capacity_pages (fun _ ->
          {
            buf = Bytes.empty;
            page = -1;
            dirty = false;
            referenced = false;
            pins = 0;
          });
    used = 0;
    table = Hashtbl.create (min 4096 (2 * capacity_pages));
    hand = 0;
    stats = Stats.create ();
  }

let disk t = t.disk
let capacity t = t.capacity
let stats t = t.stats
let resident_pages t = Hashtbl.length t.table

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page frame.buf;
    frame.dirty <- false
  end

(* Pick a victim frame: first use an uninitialised frame, then run the
   clock, skipping recently-referenced frames once and pinned frames
   always — a frame inside a [with_page_mut] window must never be stolen,
   or its checksum-stamped write-back would race the caller's mutation and
   the recycled frame would alias two pages. *)
let victim t =
  if t.used < t.capacity then begin
    let idx = t.used in
    t.used <- t.used + 1;
    let frame =
      {
        buf = Bytes.make (Disk.page_size t.disk) '\000';
        page = -1;
        dirty = false;
        referenced = false;
        pins = 0;
      }
    in
    t.frames.(idx) <- frame;
    idx
  end
  else begin
    let rec spin remaining =
      if remaining = 0 then
        failwith
          "Buffer_pool: every frame is pinned — a page-access callback \
           touched more distinct pages than the pool has frames"
      else begin
        let idx = t.hand in
        t.hand <- (t.hand + 1) mod t.capacity;
        let frame = t.frames.(idx) in
        if frame.pins > 0 then spin (remaining - 1)
        else if frame.referenced then begin
          frame.referenced <- false;
          spin (remaining - 1)
        end
        else idx
      end
    in
    (* Two sweeps: one to clear second-chance bits, one to pick. *)
    let idx = spin (2 * t.capacity) in
    let frame = t.frames.(idx) in
    if frame.page >= 0 then begin
      write_back t frame;
      Hashtbl.remove t.table frame.page;
      t.stats.evictions <- t.stats.evictions + 1
    end;
    idx
  end

let frame_of t id ~load =
  match Hashtbl.find_opt t.table id with
  | Some idx ->
      t.stats.pool_hits <- t.stats.pool_hits + 1;
      let frame = t.frames.(idx) in
      frame.referenced <- true;
      frame
  | None ->
      t.stats.pool_misses <- t.stats.pool_misses + 1;
      let idx = victim t in
      let frame = t.frames.(idx) in
      frame.page <- id;
      frame.dirty <- false;
      frame.referenced <- true;
      (try
         if load then Disk.read_into t.disk id frame.buf
         else Bytes.fill frame.buf 0 (Bytes.length frame.buf) '\000'
       with e ->
         (* A failed load must not leave a garbage frame resident. *)
         frame.page <- -1;
         raise e);
      Hashtbl.replace t.table id idx;
      frame

let allocate t =
  let id = Disk.allocate t.disk in
  let frame = frame_of t id ~load:false in
  frame.dirty <- true;
  id

let with_frame frame f =
  frame.pins <- frame.pins + 1;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1)
    (fun () -> f frame.buf)

let with_page t id f = with_frame (frame_of t id ~load:true) f

let with_page_mut t id f =
  let frame = frame_of t id ~load:true in
  frame.dirty <- true;
  with_frame frame f

let with_page_overwrite t id f =
  let frame = frame_of t id ~load:false in
  (* A resident frame keeps its bytes; zero it so the overwrite starts from
     the same blank state either way. *)
  Bytes.fill frame.buf 0 (Bytes.length frame.buf) '\000';
  frame.dirty <- true;
  with_frame frame f

let free_page t id =
  (match Hashtbl.find_opt t.table id with
  | Some idx ->
      (* Drop the frame without write-back: the page's contents are dead,
         and a deferred write-back would clobber whoever recycles the id. *)
      let frame = t.frames.(idx) in
      frame.page <- -1;
      frame.dirty <- false;
      frame.referenced <- false;
      Hashtbl.remove t.table id
  | None -> ());
  Disk.free t.disk id

let flush t =
  Hashtbl.iter (fun _ idx -> write_back t t.frames.(idx)) t.table;
  (* "Flushed" must mean durable: writes alone can still sit in the OS page
     cache on the file backend. *)
  Disk.sync t.disk

let forget_frames t =
  Hashtbl.reset t.table;
  for i = 0 to t.used - 1 do
    let frame = t.frames.(i) in
    frame.page <- -1;
    frame.dirty <- false;
    frame.referenced <- false;
    frame.pins <- 0
  done;
  t.hand <- 0

let drop_cache t =
  flush t;
  forget_frames t

let invalidate t = forget_frames t
