(** CRC-32 (IEEE 802.3) — the checksum of the versioned page format. *)

val digest : bytes -> pos:int -> len:int -> int
(** Checksum of [len] bytes starting at [pos]; always in [0, 0xFFFFFFFF]. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** Continue a checksum: [update (digest a) b] = digest of [a ^ b]. *)

val string : string -> int
