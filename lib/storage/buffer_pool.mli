(** A clock (second-chance) buffer pool over {!Disk}.

    All page access in the system goes through a pool; its capacity is the
    knob that models the paper's 512 MB buffer pool over 8 KB pages. A
    workload whose footprint exceeds capacity starts evicting, and the
    {!Stats.t} miss/eviction counters (plus the real re-reads they cause)
    reproduce the thrashing behaviour §4.6 describes for COUNTER.

    Concurrency: none — the engine is single-threaded, as TIMBER's 2007
    experiments were. *)

type t

val create : ?capacity_pages:int -> Disk.t -> t
(** [capacity_pages] defaults to 65536 pages (512 MB of 8 KB pages). *)

val disk : t -> Disk.t
val capacity : t -> int

val allocate : t -> int
(** Allocate a fresh zeroed page, resident and dirty. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t id f] runs [f] on the in-pool frame of page [id], reading
    it in if absent. The frame is {e pinned} for the duration of [f]:
    eviction (triggered by other page accesses inside [f]) skips it, so
    the buffer [f] sees cannot be stolen, written back mid-mutation, or
    recycled for another page. The frame must still not escape [f]. A
    callback that pins more distinct pages than the pool has frames
    raises [Failure]. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page} and marks the page dirty, so eviction writes it
    back (checksummed, on a V1 disk) once the window closes. *)

val with_page_overwrite : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page_mut} but hands [f] a zeroed buffer {e without}
    reading the page first — for whole-page overwrites, and the only safe
    way to rewrite a page that may currently be torn (loading it would
    raise [Disk.Corruption]). *)

val free_page : t -> int -> unit
(** Drop the page's resident frame (without write-back — the contents are
    dead) and return the page to the disk free list ({!Disk.free}). *)

val flush : t -> unit
(** Write every dirty frame back to disk (kept resident), then {!Disk.sync}
    so "flushed" pages survive a crash on the file backend. *)

val drop_cache : t -> unit
(** Flush, then forget every frame — the paper's "cold cache" reset between
    measured runs. *)

val invalidate : t -> unit
(** Forget every frame {e without} write-back — the pool's volatile state
    is gone, the disk image stands as last written. This is what a crash
    does to a buffer pool; recovery paths call it before re-reading. *)

val stats : t -> Stats.t
(** Pool-level counters (hits/misses/evictions). Disk transfer counts live
    on [Disk.stats (disk t)]. *)

val resident_pages : t -> int
