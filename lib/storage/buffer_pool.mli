(** A clock (second-chance) buffer pool over {!Disk}.

    All page access in the system goes through a pool; its capacity is the
    knob that models the paper's 512 MB buffer pool over 8 KB pages. A
    workload whose footprint exceeds capacity starts evicting, and the
    {!Stats.t} miss/eviction counters (plus the real re-reads they cause)
    reproduce the thrashing behaviour §4.6 describes for COUNTER.

    Concurrency: none — the engine is single-threaded, as TIMBER's 2007
    experiments were. *)

type t

val create : ?capacity_pages:int -> Disk.t -> t
(** [capacity_pages] defaults to 65536 pages (512 MB of 8 KB pages). *)

val disk : t -> Disk.t
val capacity : t -> int

val allocate : t -> int
(** Allocate a fresh zeroed page, resident and dirty. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t id f] runs [f] on the in-pool frame of page [id], reading
    it in if absent. The frame must not escape [f] (eviction reuses it). *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page} and marks the page dirty, so eviction writes it
    back. *)

val free_page : t -> int -> unit
(** Drop the page's resident frame (without write-back — the contents are
    dead) and return the page to the disk free list ({!Disk.free}). *)

val flush : t -> unit
(** Write every dirty frame back to disk (kept resident), then {!Disk.sync}
    so "flushed" pages survive a crash on the file backend. *)

val drop_cache : t -> unit
(** Flush, then forget every frame — the paper's "cold cache" reset between
    measured runs. *)

val stats : t -> Stats.t
(** Pool-level counters (hits/misses/evictions). Disk transfer counts live
    on [Disk.stats (disk t)]. *)

val resident_pages : t -> int
