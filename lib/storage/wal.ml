(* Write-ahead ingest log over a Disk.

   The log is a byte stream laid out over sequential page ids (the WAL
   owns its disk; nothing else allocates from it). One record is

     offset  size  field
     0       4     payload length (little-endian; never 0)
     4       8     LSN (little-endian; dense from 1)
     12      4     CRC-32 over the 8 LSN bytes and the payload
     16      len   payload

   and records are packed back to back. Every group commit pads its batch
   to a page boundary with zero bytes, so a page is written exactly once
   per sync and a synced page is never rewritten — a torn write can only
   destroy bytes that were never acknowledged. The parser treats a zero
   length field as padding and skips to the next page boundary; the first
   record that fails its length, checksum or LSN-density check ends the
   log (the torn tail).

   Recovery re-reads the stream, truncates at the last valid record
   boundary, rewrites the torn tail page (valid prefix + zero padding)
   and zeroes any later pages, so stale bytes from a dead batch can never
   resurrect as ghost records after the log grows past them again. A log
   that parses cleanly is recovered without writing anything. *)

let header_bytes = 16
let max_record_bytes = 1 lsl 28

type record = { lsn : int; payload : string }

(* Optional instrumentation, attached by the owner after recovery (the
   serve daemon wires its registry in). Updates are unconditional counter
   bumps on the append/commit path — negligible beside the fsync. *)
type meters = {
  mm_appends : X3_obs.Metrics.counter;
  mm_commits : X3_obs.Metrics.counter;
  mm_commit_bytes : X3_obs.Metrics.counter;
  mm_fsync : X3_obs.Metrics.histogram;
}

type t = {
  disk : Disk.t;
  owns_disk : bool;
  ps : int;  (** page payload size: the stream's page granularity *)
  mutable stream_len : int;  (** committed stream bytes, page-aligned *)
  mutable next_lsn : int;
  mutable durable_lsn : int;
  pending : Buffer.t;  (** encoded records awaiting the next commit *)
  mutable pending_records : record list;  (** newest first *)
  mutable committed : record list;  (** newest first *)
  mutable batches : int;
  mutable dropped_bytes : int;  (** torn bytes discarded by recovery *)
  mutable recovered : int;  (** records recovered from disk at open *)
  mutable closed : bool;
  mutable meters : meters option;
}

let check_open t = if t.closed then invalid_arg "Wal: already closed"

(* --- little-endian codec ------------------------------------------------ *)

let add_u32 buf v =
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let add_u64 buf v =
  for shift = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let get_u32 s pos =
  let u8 p = Char.code s.[p] in
  u8 pos
  lor (u8 (pos + 1) lsl 8)
  lor (u8 (pos + 2) lsl 16)
  lor (u8 (pos + 3) lsl 24)

let get_u64 s pos =
  let v = ref 0 in
  for shift = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + shift]
  done;
  !v

let record_crc ~lsn payload ~pos ~len =
  let lsn_bytes = Bytes.create 8 in
  for shift = 0 to 7 do
    Bytes.set lsn_bytes shift (Char.chr ((lsn lsr (8 * shift)) land 0xFF))
  done;
  Crc32.update
    (Crc32.digest lsn_bytes ~pos:0 ~len:8)
    (Bytes.unsafe_of_string payload)
    ~pos ~len

(* --- parsing ------------------------------------------------------------ *)

(* Returns (records oldest-first, last lsn, end of last record, dirty).
   [dirty] is true when the stream ends on garbage rather than padding —
   recovery then owes the disk a cleaning pass. *)
let parse ~ps stream =
  let avail = String.length stream in
  let records = ref [] in
  let pos = ref 0 and last = ref 0 and valid_end = ref 0 in
  let fin = ref false and dirty = ref false in
  while not !fin do
    if !pos + header_bytes > avail then fin := true
    else begin
      let len = get_u32 stream !pos in
      if len = 0 then begin
        (* Commit padding: resume at the next page boundary. *)
        let next = ((!pos / ps) + 1) * ps in
        if next + header_bytes > avail then fin := true else pos := next
      end
      else if len > max_record_bytes || !pos + header_bytes + len > avail
      then begin
        fin := true;
        dirty := true
      end
      else begin
        let lsn = get_u64 stream (!pos + 4) in
        let stored = get_u32 stream (!pos + 12) in
        if
          lsn <> !last + 1
          || stored <> record_crc ~lsn stream ~pos:(!pos + header_bytes) ~len
        then begin
          fin := true;
          dirty := true
        end
        else begin
          records :=
            { lsn; payload = String.sub stream (!pos + header_bytes) len }
            :: !records;
          last := lsn;
          pos := !pos + header_bytes + len;
          valid_end := !pos
        end
      end
    end
  done;
  (List.rev !records, !last, !valid_end, !dirty)

(* --- recovery ----------------------------------------------------------- *)

let read_stream disk =
  let ps = Disk.page_size disk in
  let npages = Disk.page_count disk in
  let buf = Bytes.create ps in
  let data = Buffer.create (max 64 (npages * ps)) in
  let complete =
    try
      for i = 0 to npages - 1 do
        Disk.read_into disk i buf;
        Buffer.add_bytes data buf
      done;
      true
    with Disk.Corruption _ | Disk.Short_read _ -> false
  in
  (Buffer.contents data, complete)

let ensure_pages t need =
  while Disk.page_count t.disk < need do
    ignore (Disk.allocate t.disk)
  done

let recover_disk ~owns_disk disk =
  let ps = Disk.page_size disk in
  let stream, complete = read_stream disk in
  let records, last, valid_end, parse_dirty = parse ~ps stream in
  let dirty = parse_dirty || not complete in
  let stream_len = (valid_end + ps - 1) / ps * ps in
  let dropped =
    max 0 ((Disk.page_count disk * ps) - valid_end)
  in
  if dirty then begin
    (* Truncate the torn tail: rewrite the page holding the last valid
       record with its valid prefix (zero-padded), zero every later page,
       and make the cleaning durable before accepting new appends. *)
    let page = Bytes.create ps in
    let tail_page = valid_end / ps in
    if valid_end mod ps <> 0 then begin
      Bytes.fill page 0 ps '\000';
      Bytes.blit_string stream (tail_page * ps) page 0 (valid_end mod ps);
      Disk.write disk tail_page page
    end;
    Bytes.fill page 0 ps '\000';
    for i = stream_len / ps to Disk.page_count disk - 1 do
      Disk.write disk i page
    done;
    Disk.sync disk
  end;
  {
    disk;
    owns_disk;
    ps;
    stream_len;
    next_lsn = last + 1;
    durable_lsn = last;
    pending = Buffer.create 256;
    pending_records = [];
    committed = List.rev records;
    batches = 0;
    dropped_bytes = (if dirty then dropped else 0);
    recovered = List.length records;
    closed = false;
    meters = None;
  }

let open_disk disk = recover_disk ~owns_disk:false disk

let open_file ?page_size path =
  let disk =
    if Sys.file_exists path then Disk.reopen ?page_size path
    else Disk.on_file ?page_size ~temp:false path
  in
  match recover_disk ~owns_disk:true disk with
  | t -> t
  | exception e ->
      Disk.close disk;
      raise e

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.owns_disk then Disk.close t.disk
  end

(* --- instrumentation ---------------------------------------------------- *)

module Metrics = X3_obs.Metrics

let attach_metrics t registry =
  (* The recovery story is history by now, so it lands as one-time bumps:
     how many durable records the open found, and whether it had to
     truncate a torn tail. *)
  Metrics.inc ~by:t.recovered (Metrics.counter registry "wal.recovered_records");
  if t.dropped_bytes > 0 then begin
    Metrics.inc (Metrics.counter registry "wal.torn_tail_truncations");
    Metrics.inc ~by:t.dropped_bytes
      (Metrics.counter registry "wal.torn_bytes_dropped")
  end;
  t.meters <-
    Some
      {
        mm_appends = Metrics.counter registry "wal.appends";
        mm_commits = Metrics.counter registry "wal.commits";
        mm_commit_bytes = Metrics.counter registry "wal.commit_bytes";
        mm_fsync = Metrics.histogram registry "wal.latency.commit_fsync";
      }

(* --- appends ------------------------------------------------------------ *)

let append t payload =
  check_open t;
  let len = String.length payload in
  if len = 0 then invalid_arg "Wal.append: empty payload";
  if len > max_record_bytes then invalid_arg "Wal.append: payload too large";
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  add_u32 t.pending len;
  add_u64 t.pending lsn;
  add_u32 t.pending (record_crc ~lsn payload ~pos:0 ~len);
  Buffer.add_string t.pending payload;
  t.pending_records <- { lsn; payload } :: t.pending_records;
  (match t.meters with
  | Some m -> Metrics.inc m.mm_appends
  | None -> ());
  lsn

let commit t =
  check_open t;
  if Buffer.length t.pending > 0 then begin
    let data = Buffer.contents t.pending in
    let n = String.length data in
    let npages = (n + t.ps - 1) / t.ps in
    let first = t.stream_len / t.ps in
    ensure_pages t (first + npages);
    let page = Bytes.create t.ps in
    for i = 0 to npages - 1 do
      Bytes.fill page 0 t.ps '\000';
      let off = i * t.ps in
      let k = min t.ps (n - off) in
      Bytes.blit_string data off page 0 k;
      Disk.write t.disk (first + i) page
    done;
    (match t.meters with
    | Some m ->
        let t0 = Unix.gettimeofday () in
        Disk.sync t.disk;
        Metrics.observe m.mm_fsync (Unix.gettimeofday () -. t0);
        Metrics.inc m.mm_commits;
        Metrics.inc ~by:n m.mm_commit_bytes
    | None -> Disk.sync t.disk);
    (* One fsync made the whole batch durable — group commit. The batch
       is only drained now: a commit that faulted mid-write keeps its
       records (and their LSNs) pending, so a retried commit rewrites
       the same bytes at the same offset and the stream stays dense —
       dropping them would burn LSNs and make every later record
       unparseable. *)
    Buffer.clear t.pending;
    let batch = t.pending_records in
    t.pending_records <- [];
    t.stream_len <- t.stream_len + (npages * t.ps);
    t.committed <- batch @ t.committed;
    t.durable_lsn <- t.next_lsn - 1;
    t.batches <- t.batches + 1
  end

(* --- observation -------------------------------------------------------- *)

let last_lsn t = t.next_lsn - 1
let durable_lsn t = t.durable_lsn
let batches t = t.batches
let dropped_bytes t = t.dropped_bytes
let record_count t = List.length t.committed

let records t = List.rev t.committed

let replay t ~after f =
  List.iter (fun r -> if r.lsn > after then f r) (records t)

let rescan t =
  check_open t;
  let stream, complete = read_stream t.disk in
  let records, _, _, dirty = parse ~ps:t.ps stream in
  if complete && not dirty then Ok records
  else Error "wal: stream does not parse cleanly"
