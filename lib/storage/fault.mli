(** Deterministic, seedable fault injection over a {!Disk} backend.

    A plan wraps any disk (memory or file) through {!Disk.set_injector} and
    decides, per operation, whether to let it proceed, fail it, tear it, or
    declare the process crashed. Plans carry their own operation counters,
    so the same plan over the same workload injects the same faults —
    a fault schedule is an input, not an environment.

    The crash model: {!crash_after_writes}[ n] lets the first [n] writes
    through, drops (or half-applies, with [~torn:true]) the next one, and
    makes every subsequent operation raise {!Crashed}. The media image at
    that point is exactly what a recovery path reopening the store sees;
    {!clear} removes the injector, playing the part of the restart. *)

type error_class = Read_error | Write_error | Sync_error | Enospc | Short_read

exception Injected of { cls : error_class; page : int }
(** A transient injected I/O error ([page] is [-1] for sync/allocate).
    [Short_read]-class faults raise {!Disk.Short_read} instead, matching
    what a really-truncated file produces. *)

exception Crashed
(** Raised by every operation after the crash point fires. *)

type t

(** {1 Schedules} *)

val fail_nth_read : int -> t
(** The [n]th read (1-based, counted by this plan) raises {!Injected};
    reads before and after proceed — a transient error a retry absorbs. *)

val fail_nth_write : int -> t
val fail_nth_sync : int -> t

val enospc_on_allocate : int -> t
(** The [n]th allocation fails — out of space. *)

val short_read_nth : int -> t
(** The [n]th read raises {!Disk.Short_read}, as a truncated file would. *)

val crash_after_writes : ?torn:bool -> int -> t
(** Let [n] writes through; the next write is dropped ([torn:false], the
    default) or half-written ([torn:true] — the torn page fails checksum
    verification on the next read), and every operation after it raises
    {!Crashed}. [n = 0] crashes on the very first write. *)

val seeded : seed:int -> rate:float -> error_class list -> t
(** Pseudo-random transient faults: every operation matching one of the
    classes draws from a splitmix64 stream seeded by [seed] and fails with
    probability [rate]. Deterministic given seed and operation sequence. *)

val combine : t list -> t
(** One plan applying all the given plans' rules, with fresh counters. *)

(** {1 Wiring} *)

val install : t -> Disk.t -> unit
(** Start injecting: every disk operation consults the plan. *)

val clear : Disk.t -> unit
(** Remove any injector — the "restart" before recovery. *)

(** {1 Observation} *)

val crashed : t -> bool
(** Did the crash point fire? *)

val injected_faults : t -> int
(** Transient faults injected so far (crash aborts not included). *)

val writes_seen : t -> int
(** Writes observed by this plan — what a crash sweep enumerates over. *)
