type axis_stats = {
  axis_name : string;
  facts_bound : int;
  facts_unbound : int;
  facts_multi : int;
  max_bindings : int;
  state_matches : int array;
}

type t = {
  rows : int;
  facts : int;
  max_rows_per_fact : int;
  axes : axis_stats array;
}

let compute table =
  let axes = Witness.axes table in
  let k = Array.length axes in
  let bound = Array.make k 0 in
  let unbound = Array.make k 0 in
  let multi = Array.make k 0 in
  let max_bindings = Array.make k 0 in
  let state_matches = Array.map (fun a -> Array.make (Axis.state_count a) 0) axes in
  let rows = ref 0 and facts = ref 0 and max_rows = ref 0 in
  Witness.iter_fact_blocks
    (fun block ->
      incr facts;
      let n = List.length block in
      rows := !rows + n;
      if n > !max_rows then max_rows := n;
      for ai = 0 to k - 1 do
        (* Distinct bindings of axis [ai] within this fact: the cartesian
           layout means the distinct (value, validity, first) cells. *)
        let distinct = Hashtbl.create 4 in
        let has_value = ref false in
        let union_validity = ref 0 in
        List.iter
          (fun row ->
            let cell = row.Witness.cells.(ai) in
            if cell.Witness.id >= 0 then begin
              has_value := true;
              union_validity := !union_validity lor cell.Witness.validity;
              Hashtbl.replace distinct
                (cell.Witness.id, cell.Witness.validity, cell.Witness.first)
                ()
            end)
          block;
        if !has_value then begin
          bound.(ai) <- bound.(ai) + 1;
          let b = Hashtbl.length distinct in
          if b > 1 then multi.(ai) <- multi.(ai) + 1;
          if b > max_bindings.(ai) then max_bindings.(ai) <- b;
          Array.iteri
            (fun s count ->
              if !union_validity land (1 lsl s) <> 0 then
                state_matches.(ai).(s) <- count + 1)
            state_matches.(ai)
        end
        else unbound.(ai) <- unbound.(ai) + 1
      done)
    table;
  {
    rows = !rows;
    facts = !facts;
    max_rows_per_fact = !max_rows;
    axes =
      Array.init k (fun ai ->
          {
            axis_name = axes.(ai).Axis.name;
            facts_bound = bound.(ai);
            facts_unbound = unbound.(ai);
            facts_multi = multi.(ai);
            max_bindings = max_bindings.(ai);
            state_matches = state_matches.(ai);
          });
  }

let pp ppf t =
  Format.fprintf ppf
    "witness table: %d rows for %d facts (max %d rows per fact)@." t.rows
    t.facts t.max_rows_per_fact;
  Array.iter
    (fun a ->
      Format.fprintf ppf
        "  %-10s bound=%d unbound=%d multi=%d max-bindings=%d states=[%s]@."
        a.axis_name a.facts_bound a.facts_unbound a.facts_multi a.max_bindings
        (String.concat "; "
           (Array.to_list (Array.map string_of_int a.state_matches))))
    t.axes
