(** Evaluation of the most relaxed fully instantiated pattern (§3.4).

    For each fact match, every axis is evaluated at its most relaxed
    structural state with outer-join semantics (Fig. 2's [*] edges): when no
    binding exists the axis contributes a [None] cell. Each binding is then
    re-checked at every stricter structural state to fill in its validity
    bitset, so that every other cuboid's input is reconstructible as a
    subset of the witness table — the property that makes bottom-up and
    top-down computation possible at all (§3.4, §3.5). *)

type fact_path = Axis.step list
(** Absolute path selecting the fact nodes, e.g. [//publication]. The first
    step's axis is relative to the document root. *)

val facts : X3_xdb.Store.t -> fact_path -> X3_xdb.Store.node list
(** Distinct fact nodes in document order. *)

val matches_at_state :
  X3_xdb.Store.t ->
  Axis.t ->
  fact:X3_xdb.Store.node ->
  binding:X3_xdb.Store.node ->
  state:int ->
  bool
(** Does [binding] match the axis pattern under [fact] when exactly the
    relaxations of structural state [state] are applied? *)

val axis_bindings :
  X3_xdb.Store.t ->
  Axis.t ->
  fact:X3_xdb.Store.node ->
  (X3_xdb.Store.node * int) list
(** Bindings at the most relaxed state, each with its validity bitset (bit
    [s] = matches at state [s]). Document order. *)

val rows_for_fact :
  X3_xdb.Store.t ->
  Axis.t array ->
  fact:X3_xdb.Store.node ->
  Witness.Staged.row list
(** The cartesian combination of per-axis bindings for one fact ("a
    combinatorial number ... for a single sub-tree", §3.3), [None]-padded
    for axes without bindings. Grouping values are the bindings' string
    values. *)

val build_table :
  ?keep:(X3_xdb.Store.node -> bool) ->
  X3_storage.Buffer_pool.t ->
  X3_xdb.Store.t ->
  fact_path:fact_path ->
  axes:Axis.t array ->
  Witness.t
(** Evaluate and materialise the witness table for a cube specification.
    [keep] filters the fact nodes (a compiled WHERE clause). *)
