module Store = X3_xdb.Store
module Sj = X3_xdb.Structural_join

type fact_path = Axis.step list

let facts store path =
  match path with
  | [] -> invalid_arg "Eval.facts: empty fact path"
  | steps ->
      let twig_path =
        List.map
          (fun { Axis.axis; tag } -> { X3_xdb.Twig_join.axis; tag })
          steps
      in
      let seen = Hashtbl.create 256 in
      let acc = ref [] in
      X3_xdb.Twig_join.path_solutions store twig_path (fun solution ->
          let fact = solution.(Array.length solution - 1) in
          if not (Hashtbl.mem seen fact) then begin
            Hashtbl.add seen fact ();
            acc := fact :: !acc
          end);
      List.sort Int.compare !acc

(* Children (resp. strict descendants) of [node] with a given tag. *)
let related store ~relation ~node ~tag =
  match relation with
  | Sj.Child ->
      List.filter
        (fun c -> String.equal (Store.tag store c) tag)
        (Store.children store node)
  | Sj.Descendant -> Store.nodes_with_tag_under store tag ~under:node

let effective_relation ~pc_ad step =
  if pc_ad then Sj.Descendant else step.Axis.axis

(* Does a chain matching [steps] (with PC edges generalised when [pc_ad])
   exist from [node], ending at a node satisfying [accept]? *)
let rec chain_exists store ~pc_ad ~node steps ~accept =
  match steps with
  | [] -> accept node
  | step :: rest ->
      let relation = effective_relation ~pc_ad step in
      List.exists
        (fun next -> chain_exists store ~pc_ad ~node:next rest ~accept)
        (related store ~relation ~node ~tag:step.Axis.tag)

let matches_at_state store axis ~fact ~binding ~state =
  let pc_ad = Axis.mask_applies axis ~mask:state Relax.Pc_ad in
  let sp = Axis.mask_applies axis ~mask:state Relax.Sp in
  let steps = axis.Axis.steps in
  if not sp then
    chain_exists store ~pc_ad ~node:fact steps ~accept:(Int.equal binding)
  else begin
    (* SP: the leaf hangs off the grandparent with a descendant edge; the
       rest of the path — including the leaf's former parent — must still
       match. For [b/author/name], SP yields [b[./author][.//name]]. *)
    match List.rev steps with
    | [] | [ _ ] -> invalid_arg "Eval.matches_at_state: SP on a unary path"
    | leaf :: parent :: prefix_rev ->
        let prefix = List.rev prefix_rev in
        if not (String.equal (Store.tag store binding) leaf.Axis.tag) then
          false
        else
          chain_exists store ~pc_ad ~node:fact prefix
            ~accept:(fun grandparent ->
              (* (a) the promoted leaf is a strict descendant of the
                 grandparent; (b) the former parent still matches there. *)
              grandparent < binding
              && Store.subtree_end store binding
                 <= Store.subtree_end store grandparent
              && related store
                   ~relation:(effective_relation ~pc_ad parent)
                   ~node:grandparent ~tag:parent.Axis.tag
                 <> [])
  end

let axis_bindings store axis ~fact =
  let leaf_tag =
    match List.rev axis.Axis.steps with
    | leaf :: _ -> leaf.Axis.tag
    | [] -> assert false
  in
  let candidates = Store.nodes_with_tag_under store leaf_tag ~under:fact in
  let full = Axis.full_mask axis in
  List.filter_map
    (fun binding ->
      let validity =
        List.fold_left
          (fun acc state ->
            if matches_at_state store axis ~fact ~binding ~state then
              acc lor (1 lsl state)
            else acc)
          0 (Axis.states axis)
      in
      if validity land (1 lsl full) <> 0 then Some (binding, validity)
      else None)
    candidates

let rows_for_fact store axes ~fact =
  let per_axis =
    Array.map
      (fun axis ->
        match axis_bindings store axis ~fact with
        | [] -> [ { Witness.Staged.value = None; validity = 0; first = true } ]
        | bindings ->
            List.mapi
              (fun i (node, validity) ->
                { Witness.Staged.value = Some (Store.string_value store node);
                  validity;
                  first = i = 0 })
              bindings)
      axes
  in
  (* Cartesian product, rightmost axis varying fastest. *)
  let rec product i =
    if i >= Array.length per_axis then [ [] ]
    else begin
      let rest = product (i + 1) in
      List.concat_map
        (fun cell -> List.map (fun tail -> cell :: tail) rest)
        per_axis.(i)
    end
  in
  List.map
    (fun cells -> { Witness.Staged.fact; cells = Array.of_list cells })
    (product 0)

let build_table ?keep pool store ~fact_path ~axes =
  let fact_list = facts store fact_path in
  let fact_list =
    match keep with
    | None -> fact_list
    | Some keep -> List.filter keep fact_list
  in
  let rows =
    List.to_seq fact_list
    |> Seq.concat_map (fun fact ->
           List.to_seq (rows_for_fact store axes ~fact))
  in
  Witness.materialize pool ~axes rows
