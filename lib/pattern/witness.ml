(* The materialised witness table, dictionary-encoded: every distinct
   dimension string is interned once into a per-axis dictionary and witness
   cells carry dense integer ids. The cube algorithms group on those ids
   (see X3_core.Group_key); strings are only rebuilt at the export
   boundary. *)

(* --- per-axis value dictionary ---------------------------------------- *)

module Dict = struct
  type t = {
    mutable values : string array;  (** id -> string, dense *)
    mutable count : int;
    index : (string, int) Hashtbl.t;  (** string -> id *)
  }

  let create () =
    { values = Array.make 16 ""; count = 0; index = Hashtbl.create 64 }

  let size t = t.count

  let intern t s =
    match Hashtbl.find_opt t.index s with
    | Some id -> id
    | None ->
        let id = t.count in
        if id = Array.length t.values then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit t.values 0 bigger 0 id;
          t.values <- bigger
        end;
        t.values.(id) <- s;
        t.count <- id + 1;
        Hashtbl.add t.index s id;
        id

  let find t s = Hashtbl.find_opt t.index s

  let value t id =
    if id < 0 || id >= t.count then
      invalid_arg (Printf.sprintf "Dict.value: id %d out of range" id);
    t.values.(id)

  let iter f t =
    for id = 0 to t.count - 1 do
      f id t.values.(id)
    done
end

(* --- coded cells -------------------------------------------------------- *)

(* [id] is the per-axis dictionary id of the bound value, or [null_id] when
   the axis has no binding for the fact (the outer-join null of the
   cartesian witness layout). *)
type cell = { id : int; validity : int; first : bool }
type row = { fact : int; cells : cell array }

let null_id = -1

let qualifies row ~axis_index ~state =
  let cell = row.cells.(axis_index) in
  cell.id >= 0 && cell.validity land (1 lsl state) <> 0

(* Rows as produced by the pattern evaluators, before interning: values are
   still strings. [materialize] converts them to coded rows. *)
module Staged = struct
  type cell = { value : string option; validity : int; first : bool }
  type row = { fact : int; cells : cell array }
end

(* --- row codec ---------------------------------------------------------- *)
(* Layout: fact (4 bytes LE) | cell count (1) | cells.
   Cell: validity (1 byte, bit 7 = first-binding flag) |
         LEB128 varint of (id + 1), so 0 encodes the null cell.
   Values live in the dictionary pages, not in the rows: a row costs a
   handful of bytes regardless of how long its dimension strings are. *)

let encode row =
  let buf = Buffer.create 16 in
  let add_u8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
  let add_u16 v =
    add_u8 (v land 0xFF);
    add_u8 ((v lsr 8) land 0xFF)
  in
  let add_u32 v =
    add_u16 (v land 0xFFFF);
    add_u16 ((v lsr 16) land 0xFFFF)
  in
  let add_varint v =
    let v = ref v in
    while !v >= 0x80 do
      add_u8 (0x80 lor (!v land 0x7F));
      v := !v lsr 7
    done;
    add_u8 !v
  in
  add_u32 row.fact;
  if Array.length row.cells > 255 then
    invalid_arg "Witness.encode: more than 255 axes";
  add_u8 (Array.length row.cells);
  Array.iter
    (fun cell ->
      if cell.validity > 0x7F then
        invalid_arg "Witness.encode: validity out of range";
      if cell.id < null_id then invalid_arg "Witness.encode: negative id";
      add_u8 (cell.validity lor if cell.first then 0x80 else 0);
      add_varint (cell.id + 1))
    row.cells;
  Buffer.contents buf

let decode record =
  let pos = ref 0 in
  let len = String.length record in
  let u8 () =
    if !pos >= len then invalid_arg "Witness.decode: truncated record";
    let v = Char.code record.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let lo = u8 () in
    let hi = u8 () in
    lo lor (hi lsl 8)
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let varint () =
    let rec go shift acc =
      let b = u8 () in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0
  in
  let fact = u32 () in
  let ncells = u8 () in
  let cells =
    Array.init ncells (fun _ ->
        let tag = u8 () in
        let validity = tag land 0x7F and first = tag land 0x80 <> 0 in
        let id = varint () - 1 in
        { id; validity; first })
  in
  if !pos <> len then invalid_arg "Witness.decode: trailing bytes";
  { fact; cells }

(* --- dictionary codec --------------------------------------------------- *)
(* Dictionary pages are stored in a side heap file, one or more records per
   value so that values of any length survive the page-capacity limit:
   axis (u16) | id (u32) | total length (u32) | chunk offset (u32) | bytes.
   Lengths are 32-bit — dictionary values are not subject to the 64 KiB
   ceiling the old inline-string witness codec imposed. *)

let dict_chunk_header = 14

let encode_dict_chunk ~axis ~id ~total ~offset chunk =
  let buf = Buffer.create (dict_chunk_header + String.length chunk) in
  let add_u8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
  let add_u16 v =
    add_u8 (v land 0xFF);
    add_u8 ((v lsr 8) land 0xFF)
  in
  let add_u32 v =
    add_u16 (v land 0xFFFF);
    add_u16 ((v lsr 16) land 0xFFFF)
  in
  add_u16 axis;
  add_u32 id;
  add_u32 total;
  add_u32 offset;
  Buffer.add_string buf chunk;
  Buffer.contents buf

let decode_dict_chunk record =
  if String.length record < dict_chunk_header then
    invalid_arg "Witness.decode_dict_chunk: truncated";
  let u8 pos = Char.code record.[pos] in
  let u16 pos = u8 pos lor (u8 (pos + 1) lsl 8) in
  let u32 pos = u16 pos lor (u16 (pos + 2) lsl 16) in
  let axis = u16 0 in
  let id = u32 2 in
  let total = u32 6 in
  let offset = u32 10 in
  let chunk =
    String.sub record dict_chunk_header
      (String.length record - dict_chunk_header)
  in
  (axis, id, total, offset, chunk)

(* --- tables ------------------------------------------------------------ *)

type t = {
  axes : Axis.t array;
  dicts : Dict.t array;
  heap : X3_storage.Heap_file.t;
  dict_heap : X3_storage.Heap_file.t;  (** the on-disk dictionary pages *)
  mutable facts : int;
}

let write_dict_value dict_heap ~axis ~id value =
  let capacity =
    X3_storage.Heap_file.capacity_bytes dict_heap - dict_chunk_header
  in
  let total = String.length value in
  if total = 0 then
    X3_storage.Heap_file.append dict_heap
      (encode_dict_chunk ~axis ~id ~total ~offset:0 "")
  else begin
    let offset = ref 0 in
    while !offset < total do
      let n = min capacity (total - !offset) in
      X3_storage.Heap_file.append dict_heap
        (encode_dict_chunk ~axis ~id ~total ~offset:!offset
           (String.sub value !offset n));
      offset := !offset + n
    done
  end

let write_dicts dict_heap dicts =
  Array.iteri
    (fun axis dict ->
      Dict.iter (fun id value -> write_dict_value dict_heap ~axis ~id value) dict)
    dicts

(* Rebuild the dictionaries from their on-disk pages; chunks of one value
   arrive in offset order because [write_dicts] emits them that way. *)
let dicts_of_heap k dict_heap =
  let partial : (int * int, Buffer.t) Hashtbl.t = Hashtbl.create 256 in
  let sizes = Array.make k 0 in
  X3_storage.Heap_file.iter
    (fun record ->
      let axis, id, total, _offset, chunk = decode_dict_chunk record in
      if axis >= k then invalid_arg "Witness.load_dicts: axis out of range";
      let buf =
        match Hashtbl.find_opt partial (axis, id) with
        | Some buf -> buf
        | None ->
            let buf = Buffer.create (max 16 total) in
            Hashtbl.add partial (axis, id) buf;
            buf
      in
      Buffer.add_string buf chunk;
      if id + 1 > sizes.(axis) then sizes.(axis) <- id + 1)
    dict_heap;
  Array.init k (fun axis ->
      let dict = Dict.create () in
      for id = 0 to sizes.(axis) - 1 do
        match Hashtbl.find_opt partial (axis, id) with
        | None -> invalid_arg "Witness.load_dicts: missing id"
        | Some buf ->
            let got = Dict.intern dict (Buffer.contents buf) in
            if got <> id then invalid_arg "Witness.load_dicts: id collision"
      done;
      dict)

let load_dicts t = dicts_of_heap (Array.length t.axes) t.dict_heap

let materialize pool ~axes rows =
  let heap = X3_storage.Heap_file.create pool in
  let dict_heap = X3_storage.Heap_file.create pool in
  let dicts = Array.map (fun _ -> Dict.create ()) axes in
  let facts = ref 0 in
  let last_fact = ref (-1) in
  Seq.iter
    (fun (row : Staged.row) ->
      if row.Staged.fact <> !last_fact then begin
        incr facts;
        last_fact := row.Staged.fact
      end;
      let cells =
        Array.mapi
          (fun ai (cell : Staged.cell) ->
            let id =
              match cell.Staged.value with
              | None -> null_id
              | Some v -> Dict.intern dicts.(ai) v
            in
            {
              id;
              validity = cell.Staged.validity;
              first = cell.Staged.first;
            })
          row.Staged.cells
      in
      X3_storage.Heap_file.append heap (encode { fact = row.Staged.fact; cells }))
    rows;
  write_dicts dict_heap dicts;
  { axes; dicts; heap; dict_heap; facts = !facts }

(* The ingest append path: intern one batch of staged rows at the table's
   tail, growing the dictionaries in place, and flush only the dictionary
   tail this batch interned (ids below the pre-append sizes are already on
   their heap pages). The batch's fact ids must be fresh — rows of one
   fact contiguous, no fact already in the table — so the fact count and
   block geometry stay consistent without a rescan. *)
let append t staged =
  let sizes_before = Array.map Dict.size t.dicts in
  let last_fact = ref min_int in
  let coded =
    List.fold_left
      (fun acc (row : Staged.row) ->
        if Array.length row.Staged.cells <> Array.length t.axes then
          invalid_arg "Witness.append: axis count mismatch";
        if row.Staged.fact <> !last_fact then begin
          t.facts <- t.facts + 1;
          last_fact := row.Staged.fact
        end;
        let cells =
          Array.mapi
            (fun ai (cell : Staged.cell) ->
              let id =
                match cell.Staged.value with
                | None -> null_id
                | Some v -> Dict.intern t.dicts.(ai) v
              in
              {
                id;
                validity = cell.Staged.validity;
                first = cell.Staged.first;
              })
            row.Staged.cells
        in
        let r = { fact = row.Staged.fact; cells } in
        X3_storage.Heap_file.append t.heap (encode r);
        r :: acc)
      [] staged
  in
  Array.iteri
    (fun ai dict ->
      for id = sizes_before.(ai) to Dict.size dict - 1 do
        write_dict_value t.dict_heap ~axis:ai ~id (Dict.value dict id)
      done)
    t.dicts;
  List.rev coded

let axes t = t.axes
let dicts t = t.dicts
let dict t ai = t.dicts.(ai)
let dict_sizes t = Array.map Dict.size t.dicts

let total_dict_size t =
  Array.fold_left (fun acc d -> acc + Dict.size d) 0 t.dicts

let value t ~axis_index id = Dict.value t.dicts.(axis_index) id

let cell_value t ~axis_index cell =
  if cell.id < 0 then None else Some (Dict.value t.dicts.(axis_index) cell.id)

let row_count t = X3_storage.Heap_file.record_count t.heap
let fact_count t = t.facts
let page_count t = X3_storage.Heap_file.page_count t.heap
let dict_page_count t = X3_storage.Heap_file.page_count t.dict_heap
let pool t = X3_storage.Heap_file.pool t.heap

(* --- resident-footprint estimate --------------------------------------- *)
(* One decoded row: the row record (fact + cells pointer), the cell array
   and a 3-field cell record per axis, in 8-byte words. Kept in sync with
   X3_core.Governor.row_cost (pattern cannot depend on core). *)
let approx_row_bytes t =
  let axes = Array.length t.axes in
  8 * (4 + axes + (4 * axes))

let approx_bytes t =
  (* The table's unavoidable resident floor: the buffer-pool frames its
     pages occupy (capped by the pool) plus the in-memory intern tables
     (values array slot + string + hashtable entry, ~48 bytes overhead per
     distinct value). Decoded rows are booked by whoever materialises
     them. *)
  let pool = pool t in
  let page_bytes = X3_storage.Disk.page_size (X3_storage.Buffer_pool.disk pool) in
  let frames =
    min (page_count t + dict_page_count t) (X3_storage.Buffer_pool.capacity pool)
  in
  let dict_bytes =
    Array.fold_left
      (fun acc d ->
        let strings = ref 0 in
        Dict.iter (fun _ v -> strings := !strings + String.length v) d;
        acc + !strings + (48 * Dict.size d))
      0 t.dicts
  in
  (frames * page_bytes) + dict_bytes
let iter f t = X3_storage.Heap_file.iter (fun r -> f (decode r)) t.heap

let iter_fact_blocks f t =
  let block = ref [] in
  let current = ref (-1) in
  iter
    (fun row ->
      if row.fact <> !current && !block <> [] then begin
        f (List.rev !block);
        block := []
      end;
      current := row.fact;
      block := row :: !block)
    t;
  if !block <> [] then f (List.rev !block)

let to_list t =
  let acc = ref [] in
  iter (fun r -> acc := r :: !acc) t;
  List.rev !acc

(* --- column-major view -------------------------------------------------- *)
(* The same table, transposed into unboxed Bigarray columns: one int32 id
   column and one byte tag column per axis (the tag byte is exactly the row
   codec's cell tag: validity bits 0-6, first-binding flag in bit 7), plus
   plain int arrays for the fact ids and the fact-block geometry. Columns
   are immutable after [Builder.finish], so they can be shared across
   domains without the boxed-row snapshots the parallel paths used to
   copy. *)

module Columnar = struct
  type int32_col = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
  type tag_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    c_axes : int;
    c_rows : int;
    c_ids : int32_col array;  (** per axis; [null_id] for unbound cells *)
    c_tags : tag_col array;  (** per axis; validity lor (first ? 0x80 : 0) *)
    c_facts : int array;  (** per row *)
    c_row_block : int array;  (** per row: index of its fact block *)
    c_block_start : int array;  (** blocks + 1 row offsets, fenced *)
  }

  let axes t = t.c_axes
  let rows t = t.c_rows
  let blocks t = Array.length t.c_block_start - 1
  let fact t i = t.c_facts.(i)
  let block_of_row t i = t.c_row_block.(i)
  let block_lo t b = t.c_block_start.(b)
  let block_hi t b = t.c_block_start.(b + 1) - 1

  (* Raw columns, for kernels that hoist the array out of their row loop. *)
  let ids t ai = t.c_ids.(ai)
  let tags t ai = t.c_tags.(ai)

  let id t ~axis ~row = Int32.to_int (Bigarray.Array1.get t.c_ids.(axis) row)
  let tag t ~axis ~row = Bigarray.Array1.get t.c_tags.(axis) row
  let validity t ~axis ~row = tag t ~axis ~row land 0x7F
  let first t ~axis ~row = tag t ~axis ~row land 0x80 <> 0

  let qualifies t ~axis ~row ~state =
    id t ~axis ~row >= 0 && tag t ~axis ~row land (1 lsl state) <> 0

  (* Resident footprint of the columns: 4 id bytes + 1 tag byte per axis
     per row, two int words per row (fact + block index), the block fence,
     and a small fixed overhead per Bigarray header. *)
  let approx_bytes ~axes ~rows ~blocks =
    (rows * ((5 * axes) + 16)) + (8 * (blocks + 2)) + (128 * ((2 * axes) + 1))

  let row t i =
    {
      fact = t.c_facts.(i);
      cells =
        Array.init t.c_axes (fun ai ->
            let tag = tag t ~axis:ai ~row:i in
            { id = id t ~axis:ai ~row:i; validity = tag land 0x7F;
              first = tag land 0x80 <> 0 });
    }

  module Builder = struct
    type cols = t

    type t = {
      mutable next : int;
      mutable last_fact : int;
      mutable nblocks : int;
      ids : int32_col array;
      tags : tag_col array;
      facts : int array;
      row_block : int array;
      block_start : int array;  (* capacity rows + 1, trimmed on finish *)
      k : int;
      capacity : int;
    }

    let create ~axes ~rows =
      {
        next = 0;
        last_fact = min_int;
        nblocks = 0;
        ids =
          Array.init axes (fun _ ->
              Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout rows);
        tags =
          Array.init axes (fun _ ->
              Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout
                rows);
        facts = Array.make rows 0;
        row_block = Array.make rows 0;
        block_start = Array.make (rows + 1) 0;
        k = axes;
        capacity = rows;
      }

    let add b (row : row) =
      if b.next >= b.capacity then
        invalid_arg "Witness.Columnar.Builder.add: capacity exceeded";
      if Array.length row.cells <> b.k then
        invalid_arg "Witness.Columnar.Builder.add: axis count mismatch";
      let i = b.next in
      if row.fact <> b.last_fact then begin
        b.block_start.(b.nblocks) <- i;
        b.nblocks <- b.nblocks + 1;
        b.last_fact <- row.fact
      end;
      b.facts.(i) <- row.fact;
      b.row_block.(i) <- b.nblocks - 1;
      for ai = 0 to b.k - 1 do
        let cell = row.cells.(ai) in
        Bigarray.Array1.set b.ids.(ai) i (Int32.of_int cell.id);
        Bigarray.Array1.set b.tags.(ai) i
          ((cell.validity land 0x7F) lor if cell.first then 0x80 else 0)
      done;
      b.next <- i + 1

    let finish b =
      if b.next <> b.capacity then
        invalid_arg "Witness.Columnar.Builder.finish: rows missing";
      let block_start = Array.sub b.block_start 0 (b.nblocks + 1) in
      block_start.(b.nblocks) <- b.next;
      {
        c_axes = b.k;
        c_rows = b.next;
        c_ids = b.ids;
        c_tags = b.tags;
        c_facts = b.facts;
        c_row_block = b.row_block;
        c_block_start = block_start;
      }
  end

  (* Grow an existing column set with a tail of appended rows: a bulk blit
     of the old columns into wider arrays plus a scalar pass over the new
     tail, extending the fenced block offsets — no rebuild of the old
     rows. The tail's facts must be fresh (no block may straddle the
     seam). *)
  let extend cols added =
    match added with
    | [] -> cols
    | first :: _ ->
        let k = cols.c_axes in
        let old = cols.c_rows in
        let n = List.length added in
        let rows = old + n in
        if old > 0 && first.fact = cols.c_facts.(old - 1) then
          invalid_arg "Witness.Columnar.extend: fact straddles the seam";
        let ids =
          Array.init k (fun ai ->
              let col =
                Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout rows
              in
              Bigarray.Array1.blit cols.c_ids.(ai)
                (Bigarray.Array1.sub col 0 old);
              col)
        in
        let tags =
          Array.init k (fun ai ->
              let col =
                Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout
                  rows
              in
              Bigarray.Array1.blit cols.c_tags.(ai)
                (Bigarray.Array1.sub col 0 old);
              col)
        in
        let facts = Array.make rows 0 in
        Array.blit cols.c_facts 0 facts 0 old;
        let row_block = Array.make rows 0 in
        Array.blit cols.c_row_block 0 row_block 0 old;
        let old_blocks = Array.length cols.c_block_start - 1 in
        let last_fact = ref min_int in
        let starts = ref [] in
        let nb = ref 0 in
        List.iteri
          (fun i (r : row) ->
            if Array.length r.cells <> k then
              invalid_arg "Witness.Columnar.extend: axis count mismatch";
            let idx = old + i in
            if r.fact <> !last_fact then begin
              starts := idx :: !starts;
              incr nb;
              last_fact := r.fact
            end;
            facts.(idx) <- r.fact;
            row_block.(idx) <- old_blocks + !nb - 1;
            for ai = 0 to k - 1 do
              let cell = r.cells.(ai) in
              Bigarray.Array1.set ids.(ai) idx (Int32.of_int cell.id);
              Bigarray.Array1.set tags.(ai) idx
                ((cell.validity land 0x7F) lor if cell.first then 0x80 else 0)
            done)
          added;
        let block_start = Array.make (old_blocks + !nb + 1) 0 in
        Array.blit cols.c_block_start 0 block_start 0 old_blocks;
        List.iteri
          (fun j s -> block_start.(old_blocks + j) <- s)
          (List.rev !starts);
        block_start.(old_blocks + !nb) <- rows;
        {
          c_axes = k;
          c_rows = rows;
          c_ids = ids;
          c_tags = tags;
          c_facts = facts;
          c_row_block = row_block;
          c_block_start = block_start;
        }

  (* --- snapshot codec ---------------------------------------------------- *)
  (* One column chunk per record: 'C' | kind u8 | axis u16 | start u32 |
     count u32 | payload. Kinds: 0 = facts (u32 LE per row), 1 = axis ids
     (u32 LE of id + 1, so the null cell encodes as 0), 2 = axis tag bytes.
     The block geometry is not stored — it is a pure function of the fact
     column. *)

  let chunk_rows = 4096
  let chunk_header = 12

  let encode_chunk ~kind ~axis ~start cols n =
    let width = if kind = 2 then 1 else 4 in
    let buf = Buffer.create (chunk_header + (n * width)) in
    let add_u8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
    let add_u16 v =
      add_u8 (v land 0xFF);
      add_u8 ((v lsr 8) land 0xFF)
    in
    let add_u32 v =
      add_u16 (v land 0xFFFF);
      add_u16 ((v lsr 16) land 0xFFFF)
    in
    Buffer.add_char buf 'C';
    add_u8 kind;
    add_u16 axis;
    add_u32 start;
    add_u32 n;
    for i = start to start + n - 1 do
      match kind with
      | 0 -> add_u32 cols.c_facts.(i)
      | 1 -> add_u32 (Int32.to_int (Bigarray.Array1.get cols.c_ids.(axis) i) + 1)
      | _ -> add_u8 (Bigarray.Array1.get cols.c_tags.(axis) i)
    done;
    Buffer.contents buf

  let records cols =
    let acc = ref [] in
    let emit ~kind ~axis =
      let n = cols.c_rows in
      let start = ref 0 in
      while !start < n do
        let count = min chunk_rows (n - !start) in
        acc := encode_chunk ~kind ~axis ~start:!start cols count :: !acc;
        start := !start + count
      done
    in
    emit ~kind:0 ~axis:0;
    for ai = 0 to cols.c_axes - 1 do
      emit ~kind:1 ~axis:ai;
      emit ~kind:2 ~axis:ai
    done;
    List.rev !acc

  (* [record] is the chunk body without its leading 'C' tag. *)
  let decode_chunk record =
    if String.length record < chunk_header - 1 then
      invalid_arg "witness snapshot: truncated column chunk";
    let u8 pos = Char.code record.[pos] in
    let u16 pos = u8 pos lor (u8 (pos + 1) lsl 8) in
    let u32 pos = u16 pos lor (u16 (pos + 2) lsl 16) in
    let kind = u8 0 in
    let axis = u16 1 in
    let start = u32 3 in
    let count = u32 7 in
    if kind > 2 then
      invalid_arg (Printf.sprintf "witness snapshot: column kind %d" kind);
    let width = if kind = 2 then 1 else 4 in
    if String.length record <> chunk_header - 1 + (count * width) then
      invalid_arg "witness snapshot: column chunk length mismatch";
    (kind, axis, start, count, record)
end

let columnar_of_table t =
  let b =
    Columnar.Builder.create ~axes:(Array.length t.axes) ~rows:(row_count t)
  in
  iter (Columnar.Builder.add b) t;
  Columnar.Builder.finish b

(* --- snapshot persistence ---------------------------------------------- *)
(* A witness table as one atomic snapshot: a header record, then the heap
   records verbatim ('R' rows, 'D' dictionary chunks) — the row and dict
   codecs above already make each record self-contained, so save/load is a
   tagged pass-through and the snapshot store supplies atomicity and
   checksums. *)

let snapshot_header k ~facts ~rows =
  let buf = Buffer.create 12 in
  Buffer.add_char buf 'H';
  Buffer.add_char buf (Char.chr (k land 0xFF));
  let add_u32 v =
    for shift = 0 to 3 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
    done
  in
  add_u32 facts;
  add_u32 rows;
  Buffer.contents buf

let parse_snapshot_header record =
  if String.length record <> 10 || record.[0] <> 'H' then
    Error "witness snapshot: bad header record"
  else
    let u8 pos = Char.code record.[pos] in
    let u32 pos =
      u8 pos lor (u8 (pos + 1) lsl 8) lor (u8 (pos + 2) lsl 16)
      lor (u8 (pos + 3) lsl 24)
    in
    Ok (u8 1, u32 2, u32 6)

let save t store =
  (* Since the columnar refactor the snapshot's row payload is the
     column-major layout ('C' chunks); the legacy 'R' row records are still
     accepted by [load] so old snapshots keep working. *)
  let cols = columnar_of_table t in
  let dict_records = ref [] in
  X3_storage.Heap_file.iter
    (fun r -> dict_records := ("D" ^ r) :: !dict_records)
    t.dict_heap;
  let header =
    snapshot_header (Array.length t.axes) ~facts:t.facts
      ~rows:(X3_storage.Heap_file.record_count t.heap)
  in
  X3_storage.Snapshot_store.commit store
    ((header :: Columnar.records cols) @ List.rev !dict_records)

let load store pool ~axes =
  match X3_storage.Snapshot_store.read store with
  | [] -> Error "witness snapshot: empty store"
  | header :: rest -> (
      match parse_snapshot_header header with
      | Error _ as e -> e
      | Ok (k, facts, rows) ->
          if k <> Array.length axes then
            Error
              (Printf.sprintf
                 "witness snapshot: %d axes on disk, %d expected" k
                 (Array.length axes))
          else begin
            let heap = X3_storage.Heap_file.create pool in
            let dict_heap = X3_storage.Heap_file.create pool in
            (* Columnar staging: one cursor per column ('C' chunks must
               arrive in row order per column, which is how [save] emits
               them); the boxed rows are synthesised once every column is
               complete, so the rebuilt heap is identical to one loaded
               from legacy 'R' records. *)
            let legacy_rows = ref false in
            let cols = Columnar.Builder.create ~axes:k ~rows in
            let col_index ~kind ~axis =
              match kind with
              | 0 -> 0
              | 1 -> 1 + axis
              | _ -> 1 + k + axis
            in
            let cursor = Array.make (1 + (2 * k)) 0 in
            let columnar_seen = ref false in
            let apply_chunk body =
              let kind, axis, start, count, payload =
                Columnar.decode_chunk body
              in
              if kind > 0 && axis >= k then
                invalid_arg "witness snapshot: column axis out of range";
              let ci = col_index ~kind ~axis in
              if cursor.(ci) <> start then
                invalid_arg "witness snapshot: column chunk out of order";
              if start + count > rows then
                invalid_arg "witness snapshot: column chunk past row count";
              let u32 pos =
                Char.code payload.[pos]
                lor (Char.code payload.[pos + 1] lsl 8)
                lor (Char.code payload.[pos + 2] lsl 16)
                lor (Char.code payload.[pos + 3] lsl 24)
              in
              let base = Columnar.chunk_header - 1 in
              for i = 0 to count - 1 do
                match kind with
                | 0 -> cols.Columnar.Builder.facts.(start + i) <- u32 (base + (4 * i))
                | 1 ->
                    Bigarray.Array1.set
                      cols.Columnar.Builder.ids.(axis)
                      (start + i)
                      (Int32.of_int (u32 (base + (4 * i)) - 1))
                | _ ->
                    Bigarray.Array1.set
                      cols.Columnar.Builder.tags.(axis)
                      (start + i)
                      (Char.code payload.[base + i])
              done;
              cursor.(ci) <- start + count;
              columnar_seen := true
            in
            match
              List.iter
                (fun record ->
                  if String.length record < 1 then
                    invalid_arg "witness snapshot: empty record";
                  let body = String.sub record 1 (String.length record - 1) in
                  match record.[0] with
                  | 'R' ->
                      (* Decode to validate before trusting the record. *)
                      ignore (decode body);
                      legacy_rows := true;
                      X3_storage.Heap_file.append heap body
                  | 'C' -> apply_chunk body
                  | 'D' ->
                      ignore (decode_dict_chunk body);
                      X3_storage.Heap_file.append dict_heap body
                  | c ->
                      invalid_arg
                        (Printf.sprintf "witness snapshot: unknown tag %C" c))
                rest;
              if !columnar_seen || rows = 0 then begin
                if !legacy_rows && !columnar_seen then
                  invalid_arg "witness snapshot: mixed row and column records";
                Array.iter
                  (fun filled ->
                    if filled <> rows then
                      invalid_arg "witness snapshot: incomplete column")
                  cursor;
                for i = 0 to rows - 1 do
                  let cells =
                    Array.init k (fun ai ->
                        let id =
                          Int32.to_int
                            (Bigarray.Array1.get
                               cols.Columnar.Builder.ids.(ai) i)
                        in
                        let tag =
                          Bigarray.Array1.get cols.Columnar.Builder.tags.(ai) i
                        in
                        if id < null_id then
                          invalid_arg "witness snapshot: column id underflow";
                        { id; validity = tag land 0x7F;
                          first = tag land 0x80 <> 0 })
                  in
                  X3_storage.Heap_file.append heap
                    (encode { fact = cols.Columnar.Builder.facts.(i); cells })
                done
              end
            with
            | exception Invalid_argument msg -> Error msg
            | () ->
                if X3_storage.Heap_file.record_count heap <> rows then
                  Error "witness snapshot: row count mismatch"
                else
                  let t =
                    { axes; dicts = [||]; heap; dict_heap; facts }
                  in
                  (match dicts_of_heap k dict_heap with
                  | exception Invalid_argument msg -> Error msg
                  | dicts -> Ok { t with dicts })
          end)

let pp_row ppf row =
  Format.fprintf ppf "@[<h>fact=%d" row.fact;
  Array.iter
    (fun cell ->
      if cell.id < 0 then Format.fprintf ppf " ⊥"
      else Format.fprintf ppf " #%d/%x" cell.id cell.validity)
    row.cells;
  Format.fprintf ppf "@]"
