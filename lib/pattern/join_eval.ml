module Store = X3_xdb.Store
module Sj = X3_xdb.Structural_join

(* A match set: (fact, node) pairs, kept as a Hashtbl from node to the
   facts that reach it, plus a sorted array of the distinct nodes so the
   set can feed the next structural join as its ancestor list. *)
type match_set = {
  nodes : Store.node array;  (** distinct, ascending *)
  facts_of : (Store.node, Store.node list) Hashtbl.t;
}

let empty_set = { nodes = [||]; facts_of = Hashtbl.create 1 }

let set_of_pairs pairs =
  (* [pairs]: (fact, node), possibly with duplicates. *)
  let facts_of = Hashtbl.create 256 in
  List.iter
    (fun (fact, node) ->
      let known = Option.value (Hashtbl.find_opt facts_of node) ~default:[] in
      if not (List.mem fact known) then
        Hashtbl.replace facts_of node (fact :: known))
    pairs;
  let nodes = Array.of_seq (Hashtbl.to_seq_keys facts_of) in
  Array.sort Int.compare nodes;
  { nodes; facts_of }

let initial_set facts =
  let facts_of = Hashtbl.create (2 * Array.length facts) in
  Array.iter (fun fact -> Hashtbl.replace facts_of fact [ fact ]) facts;
  { nodes = Array.copy facts; facts_of }

(* One chain step: join the current match set's nodes with the step tag's
   index and propagate fact provenance. *)
let step_join store set ~relation ~tag =
  if Array.length set.nodes = 0 then empty_set
  else begin
    let descendants = Store.nodes_with_tag store tag in
    let pairs = ref [] in
    Sj.join store ~axis:relation ~ancestors:set.nodes ~descendants
      (fun anc desc ->
        List.iter
          (fun fact -> pairs := (fact, desc) :: !pairs)
          (Hashtbl.find set.facts_of anc));
    set_of_pairs !pairs
  end

let effective_relation ~pc_ad step =
  if pc_ad then Sj.Descendant else step.Axis.axis

let chain_set store ~pc_ad ~start steps =
  List.fold_left
    (fun set step ->
      step_join store set
        ~relation:(effective_relation ~pc_ad step)
        ~tag:step.Axis.tag)
    start steps

(* The (fact, binding) match set of one axis at one structural state. *)
let state_matches store axis ~facts ~state =
  let pc_ad = Axis.mask_applies axis ~mask:state Relax.Pc_ad in
  let sp = Axis.mask_applies axis ~mask:state Relax.Sp in
  let start = initial_set facts in
  if not sp then chain_set store ~pc_ad ~start axis.Axis.steps
  else begin
    match List.rev axis.Axis.steps with
    | leaf :: parent :: prefix_rev ->
        let prefix = List.rev prefix_rev in
        (* Grandparents reached by the prefix chain... *)
        let grandparents = chain_set store ~pc_ad ~start prefix in
        (* ... that still have the pattern parent below them ... *)
        let with_parent =
          if Array.length grandparents.nodes = 0 then empty_set
          else begin
            let keep =
              Sj.semijoin_ancestors store
                ~axis:(effective_relation ~pc_ad parent)
                ~ancestors:grandparents.nodes
                ~descendants:(Store.nodes_with_tag store parent.Axis.tag)
            in
            let facts_of = Hashtbl.create (2 * Array.length keep) in
            Array.iter
              (fun g ->
                Hashtbl.replace facts_of g
                  (Hashtbl.find grandparents.facts_of g))
              keep;
            { nodes = keep; facts_of }
          end
        in
        (* ... and the promoted leaf anywhere below those grandparents. *)
        step_join store with_parent ~relation:Sj.Descendant ~tag:leaf.Axis.tag
    | _ -> chain_set store ~pc_ad ~start axis.Axis.steps
  end

let axis_bindings_by_fact store axis ~facts =
  let full = Axis.full_mask axis in
  (* validity.(fact, binding) assembled across states. *)
  let validity : (Store.node * Store.node, int) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun state ->
      let matches = state_matches store axis ~facts ~state in
      Array.iter
        (fun node ->
          List.iter
            (fun fact ->
              let key = (fact, node) in
              let bits =
                Option.value (Hashtbl.find_opt validity key) ~default:0
              in
              Hashtbl.replace validity key (bits lor (1 lsl state)))
            (Hashtbl.find matches.facts_of node))
        matches.nodes)
    (Axis.states axis);
  let by_fact : (Store.node, (Store.node * int) list) Hashtbl.t =
    Hashtbl.create 1024
  in
  Hashtbl.iter
    (fun (fact, node) bits ->
      if bits land (1 lsl full) <> 0 then
        Hashtbl.replace by_fact fact
          ((node, bits)
          :: Option.value (Hashtbl.find_opt by_fact fact) ~default:[]))
    validity;
  (* Document order within each fact. *)
  Hashtbl.filter_map_inplace
    (fun _ bindings ->
      Some (List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings))
    by_fact;
  by_fact

let build_table pool store ~fact_path ~axes =
  let fact_list = Eval.facts store fact_path in
  let facts = Array.of_list fact_list in
  let per_axis = Array.map (fun axis -> axis_bindings_by_fact store axis ~facts) axes in
  let rows_for_fact fact =
    let cells_per_axis =
      Array.map
        (fun bindings ->
          match Hashtbl.find_opt bindings fact with
          | None | Some [] ->
              [ { Witness.Staged.value = None; validity = 0; first = true } ]
          | Some bs ->
              List.mapi
                (fun i (node, validity) ->
                  { Witness.Staged.value = Some (Store.string_value store node);
                    validity;
                    first = i = 0 })
                bs)
        per_axis
    in
    let rec product i =
      if i >= Array.length cells_per_axis then [ [] ]
      else begin
        let rest = product (i + 1) in
        List.concat_map
          (fun cell -> List.map (fun tail -> cell :: tail) rest)
          cells_per_axis.(i)
      end
    in
    List.map
      (fun cells -> { Witness.Staged.fact; cells = Array.of_list cells })
      (product 0)
  in
  let rows =
    List.to_seq fact_list
    |> Seq.concat_map (fun fact -> List.to_seq (rows_for_fact fact))
  in
  Witness.materialize pool ~axes rows
