(** Witness tables: the materialised input of every cube algorithm.

    §4 of the paper: "we pre-evaluated the query tree pattern, and
    materialized the results into a file. The file was then read in and the
    cubing was performed." A witness table is that file: one row per match
    of the most relaxed fully instantiated pattern, carrying the fact id,
    and per axis the grouping value together with a {e validity bitset}
    recording at which structural states of that axis the binding matches
    (bit [s] set means the binding is a legal match when exactly the
    relaxations in state [s] are applied).

    Dimension values are {e dictionary-encoded}: each axis owns an intern
    table assigning dense integer ids to the distinct strings bound on it,
    and witness cells store those ids. Rows therefore cost a handful of
    bytes each regardless of string length, and the cube algorithms can
    group on packed integers (see [X3_core.Group_key]); strings are only
    rebuilt at the export boundary.

    A row whose cell has [id = null_id] has no binding for that axis even
    in the most relaxed state — the fact participates only in cuboids where
    the axis is LND-removed (this is exactly how incomplete coverage enters
    the data).

    Rows of the same fact are contiguous, which the counter-based algorithm
    relies on to form per-fact combination blocks. *)

(** {1 Per-axis value dictionaries} *)

module Dict : sig
  type t

  val create : unit -> t
  val size : t -> int

  val intern : t -> string -> int
  (** Id of [s], assigning the next dense id on first sight. *)

  val find : t -> string -> int option
  val value : t -> int -> string
  (** Raises [Invalid_argument] when the id is out of range. *)

  val iter : (int -> string -> unit) -> t -> unit
  (** In ascending id order. *)
end

(** {1 Coded rows} *)

type cell = {
  id : int;  (** per-axis dictionary id, or {!null_id} when unbound *)
  validity : int;
  first : bool;
      (** is this the fact's first binding of the axis (document order)?
          Null cells are trivially [first]. A row {e represents} a fact
          in a cuboid iff every present axis is valid at the cuboid's state
          and every LND-removed axis holds a first binding — the canonical
          representative that keeps the cartesian blow-up of repeated
          bindings on removed axes from double-counting a fact. *)
}

type row = { fact : int; cells : cell array }

val null_id : int
(** The id of an unbound cell; always negative. *)

val qualifies : row -> axis_index:int -> state:int -> bool
(** Does this row participate in a cuboid whose [axis_index]-th axis is at
    structural state [state]? ([Removed] axes always qualify and are not
    asked — see {!cell.first} for how removed axes are collapsed.) *)

(** Rows as produced by the pattern evaluators, before interning: cells
    still carry the bound strings. {!materialize} interns them. *)
module Staged : sig
  type cell = { value : string option; validity : int; first : bool }
  type row = { fact : int; cells : cell array }
end

(** {1 Binary codecs} — rows and dictionary pages are heap-file records. *)

val encode : row -> string
val decode : string -> row
(** Raises [Invalid_argument] on malformed records. *)

val encode_dict_chunk :
  axis:int -> id:int -> total:int -> offset:int -> string -> string

val decode_dict_chunk : string -> int * int * int * int * string
(** [axis, id, total, offset, chunk]. Values longer than a page are split
    across chunks; [total] is the full value length and [offset] the
    chunk's position in it. *)

(** {1 Tables} *)

type t
(** A witness table materialised into a heap file, plus its dictionary
    pages in a side heap file. *)

val materialize :
  X3_storage.Buffer_pool.t -> axes:Axis.t array -> Staged.row Seq.t -> t
(** Intern every staged row and append the coded rows; the dictionaries are
    flushed to their heap pages once all rows are in. *)

val append : t -> Staged.row list -> row list
(** The ingest path: intern one batch of staged rows and append them at
    the table's tail, growing the dictionaries in place — no rebuild. Only
    the dictionary tail interned by this batch is flushed to the dictionary
    heap (earlier ids are already on their pages), and the coded rows are
    returned in append order so a delta-maintenance layer can patch views
    without rescanning. The batch's fact ids must be {e fresh} (no fact
    already in the table) and rows of one fact contiguous. *)

val axes : t -> Axis.t array
val dicts : t -> Dict.t array
val dict : t -> int -> Dict.t
val dict_sizes : t -> int array
val total_dict_size : t -> int
(** Sum of distinct values across all axes. *)

val value : t -> axis_index:int -> int -> string
val cell_value : t -> axis_index:int -> cell -> string option
(** Decode a cell back to its bound string ([None] for null cells). *)

val load_dicts : t -> Dict.t array
(** Rebuild the dictionaries from the on-disk dictionary pages (rather than
    the in-memory intern tables) — exercises the chunked codec. *)

val row_count : t -> int
val fact_count : t -> int
(** Number of distinct facts (rows of one fact are contiguous). *)

val page_count : t -> int
val dict_page_count : t -> int
val pool : t -> X3_storage.Buffer_pool.t

val approx_row_bytes : t -> int
(** Estimated bytes of one decoded row resident in memory. *)

val approx_bytes : t -> int
(** Estimated resident floor of the table: the buffer-pool frames its
    pages occupy plus the in-memory value dictionaries. The byte-budget
    governor reserves this at query start — a budget that cannot hold the
    input cannot run the query. *)

val iter : (row -> unit) -> t -> unit
(** One sequential scan through the buffer pool. *)

val iter_fact_blocks : (row list -> unit) -> t -> unit
(** Scan grouped by fact: the callback receives the consecutive rows of one
    fact at a time. *)

val to_list : t -> row list
val pp_row : Format.formatter -> row -> unit

(** {1 Column-major view}

    The same table transposed into unboxed columns: per axis one [int32]
    id column and one byte tag column (the row codec's cell tag byte —
    validity in bits 0-6, the first-binding flag in bit 7), plus plain int
    arrays for fact ids and fact-block geometry. Columns are immutable
    once built, so the parallel algorithms share them across domains
    instead of snapshotting boxed rows; the radix grouping kernels read
    the raw columns directly. *)

module Columnar : sig
  type int32_col =
    (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  type tag_col =
    (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t

  val axes : t -> int
  val rows : t -> int
  val blocks : t -> int
  (** Fact blocks (rows of one fact are contiguous). *)

  val fact : t -> int -> int
  val block_of_row : t -> int -> int
  val block_lo : t -> int -> int
  val block_hi : t -> int -> int
  (** Inclusive row range of one fact block. *)

  val ids : t -> int -> int32_col
  val tags : t -> int -> tag_col
  (** The raw column of one axis — for kernels that hoist the array out of
      their row loop. Ids are {!null_id} for unbound cells. *)

  val id : t -> axis:int -> row:int -> int
  val tag : t -> axis:int -> row:int -> int
  val validity : t -> axis:int -> row:int -> int
  val first : t -> axis:int -> row:int -> bool
  val qualifies : t -> axis:int -> row:int -> state:int -> bool

  val approx_bytes : axes:int -> rows:int -> blocks:int -> int
  (** Resident footprint of the columns — what the governor books when a
      context columnarises its table. *)

  val row : t -> int -> row
  (** Rebuild the boxed row at one index — the compatibility view. *)

  module Builder : sig
    type cols = t
    type t

    val create : axes:int -> rows:int -> t
    val add : t -> row -> unit
    (** Rows must arrive in table order (same-fact rows contiguous). *)

    val finish : t -> cols
    (** Raises [Invalid_argument] unless exactly [rows] rows were added. *)
  end

  val extend : t -> row list -> t
  (** A new column set holding the old rows (bulk-copied) plus [added] as
      a tail chunk with extended fenced block offsets — the ingest path's
      alternative to a full rebuild. The tail's facts must be fresh;
      raises [Invalid_argument] when the first added row continues the
      table's last fact block. *)
end

val columnar_of_table : t -> Columnar.t
(** One decode pass over the heap pages. The caller owns instrumentation
    and fault handling of the scan; see [X3_core.Context.cols] for the
    instrumented form the algorithms use. *)

(** {1 Crash-safe persistence}

    A witness table can be committed into a {!X3_storage.Snapshot_store}
    as one atomic snapshot (header, rows, dictionary chunks). Combined
    with [Snapshot_store.recover] this gives the table a restart story:
    after a crash the store yields either the previous or the newly saved
    table, never a torn mix. *)

val save : t -> X3_storage.Snapshot_store.t -> unit
(** Atomically commit the table (rows + dictionaries) to [store]. *)

val load :
  X3_storage.Snapshot_store.t ->
  X3_storage.Buffer_pool.t ->
  axes:Axis.t array ->
  (t, string) result
(** Rebuild a table from the store's committed snapshot into fresh heap
    files on [pool]. Every record is re-validated through the row and
    dictionary codecs; [Error] reports the first malformed one. *)
