(** Loopback HTTP listener for Prometheus scrapes and health probes.

    Serves three routes over HTTP/1.0, one connection at a time on its
    own thread (a scrape endpoint, not a workload):

    - [GET /metrics] — Prometheus text exposition of the snapshot the
      daemon provides (content type [text/plain; version=0.0.4]);
    - [GET /healthz] — always [200] while the process lives;
    - [GET /readyz] — [200] once {!set_ready}[ true] (warm restore and
      WAL replay done), [503] before that and again during drain.

    Binds 127.0.0.1 only: the observability plane is host-local and is
    never exposed on the daemon's serving address. *)

type t

val start :
  ?port:int ->
  snapshot:(unit -> (string * X3_obs.Metrics.value) list) ->
  unit ->
  t
(** Bind and start the accept thread. [port] defaults to 0 (kernel picks
    an ephemeral port — see {!port}); [snapshot] is called per scrape.
    Raises [Unix.Unix_error] when the bind fails. *)

val port : t -> int
(** The bound port (useful with [~port:0] in tests). *)

val set_ready : t -> bool -> unit
(** Flip the [/readyz] answer. Starts [false]. *)

val ready : t -> bool

val stop : t -> unit
(** Close the listener and join the accept thread (idempotent). *)
