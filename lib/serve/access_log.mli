(** Structured access log: one JSONL record per served request.

    Writes happen off the hot path: {!write} only serialises the record
    and pushes it onto a bounded in-memory queue; a dedicated writer
    thread drains the queue to the file. A full queue {e drops} the
    record and bumps [serve.access_log.dropped] — the log backing up can
    never block a request thread. When the file reaches its size cap it
    rotates once to [FILE.1] (clobbering the previous [FILE.1]), so the
    log occupies bounded disk.

    Counters (on the registry passed to {!create}):
    [serve.access_log.records] (enqueued), [serve.access_log.dropped]
    (queue full or file unwritable), [serve.access_log.rotations]. *)

type t

val default_max_bytes : int
(** 16 MiB per file before rotation. *)

val create :
  ?max_bytes:int -> ?queue_cap:int -> metrics:X3_obs.Metrics.t -> string -> t
(** Start the writer thread appending to the given path (created if
    missing; an existing file's size counts toward the rotation cap). *)

val write : t -> X3_obs.Json.t -> unit
(** Enqueue one record (never blocks; drops with a counter when the
    queue is full or the log already closed). *)

val close : t -> unit
(** Drain the queue and stop the writer (idempotent). *)

val path : t -> string
