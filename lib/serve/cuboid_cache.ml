module Governor = X3_core.Governor

type 'a entry = {
  e_key : string;
  e_value : 'a;
  e_bytes : int;
  mutable e_stamp : int;  (* LRU clock: larger = more recently used *)
}

type 'a t = {
  account : Governor.account;
  on_evict : string -> 'a -> unit;
  observe_walk : seconds:float -> victims:int -> unit;
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(on_evict = fun _ _ -> ())
    ?(observe_walk = fun ~seconds:_ ~victims:_ -> ()) ~account () =
  {
    account;
    on_evict;
    observe_walk;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.hits <- t.hits + 1;
          e.e_stamp <- tick t;
          Some e.e_value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

(* Detach one entry under the lock, releasing its bytes; the [on_evict]
   callback is deferred to after unlock so it may re-enter the cache
   (a document eviction removes its cuboid views). *)
let detach t e =
  Hashtbl.remove t.table e.e_key;
  Governor.release t.account e.e_bytes;
  t.evictions <- t.evictions + 1;
  fun () -> t.on_evict e.e_key e.e_value

let lru t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | Some best when best.e_stamp <= e.e_stamp -> acc
      | _ -> Some e)
    t.table None

let insert t ~key ~bytes value =
  let deferred = ref [] in
  let victims = ref 0 in
  let walk_seconds = ref 0. in
  let stored =
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some old -> deferred := detach t old :: !deferred
        | None -> ());
        let rec make_room () =
          if Governor.reserve t.account bytes then true
          else
            match lru t with
            | Some victim ->
                deferred := detach t victim :: !deferred;
                incr victims;
                make_room ()
            | None -> false
        in
        let fits =
          if Governor.reserve t.account bytes then true
          else begin
            (* A reservation that needs evictions is the walk worth
               timing: each round scans the whole table for the LRU
               victim, so a hot cache under churn pays O(entries) per
               freed entry. *)
            let t0 = Unix.gettimeofday () in
            let fits = make_room () in
            walk_seconds := Unix.gettimeofday () -. t0;
            fits
          end
        in
        if fits then begin
          Hashtbl.replace t.table key
            { e_key = key; e_value = value; e_bytes = bytes; e_stamp = tick t };
          true
        end
        else false)
  in
  List.iter (fun f -> f ()) (List.rev !deferred);
  if !victims > 0 then
    t.observe_walk ~seconds:!walk_seconds ~victims:!victims;
  stored

let remove t key =
  let deferred =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e -> Some (detach t e)
        | None -> None)
  in
  Option.iter (fun f -> f ()) deferred

(* Oldest-first so a consumer that replays the list (the warm-restart
   snapshot) reconstructs the same recency order by inserting in turn. *)
let snapshot t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
      |> List.sort (fun a b -> compare a.e_stamp b.e_stamp)
      |> List.map (fun e -> (e.e_key, e.e_value, e.e_bytes)))

let entries t = locked t (fun () -> Hashtbl.length t.table)
let resident_bytes t = Governor.account_used t.account
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
