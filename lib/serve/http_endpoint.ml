(* Minimal HTTP/1.0 listener for scrapes and probes. Three routes:

     GET /metrics  -> Prometheus text exposition of the daemon registry
     GET /healthz  -> 200 while the process is alive
     GET /readyz   -> 200 once warm restore / WAL replay finished and the
                      daemon is not draining; 503 otherwise

   One thread accepts and serves connections sequentially — a scrape
   endpoint sees one Prometheus poll every few seconds, not a workload.
   Request parsing is deliberately crude (first line only, headers
   ignored, bounded read with a socket timeout) because nothing beyond
   `GET <path>` matters and a hostile peer must not pin the thread. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  ready : bool Atomic.t;
  mutable closed : bool;
  lock : Mutex.t;
  mutable thread : Thread.t option;
}

let http_status = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 503 -> "503 Service Unavailable"
  | 405 -> "405 Method Not Allowed"
  | _ -> "400 Bad Request"

let respond fd ~code ~content_type body =
  let msg =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      (http_status code) content_type (String.length body) body
  in
  let buf = Bytes.of_string msg in
  let len = Bytes.length buf in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write fd buf !pos (len - !pos)
    done
  with Unix.Unix_error _ -> ()

(* Read until the end of the request head (or 4 KiB, or the socket
   timeout) and return the request line. *)
let read_request_line fd =
  let buf = Bytes.create 4096 in
  let total = ref 0 in
  let fin = ref false in
  (try
     while (not !fin) && !total < Bytes.length buf do
       match Unix.read fd buf !total (Bytes.length buf - !total) with
       | 0 -> fin := true
       | n ->
           total := !total + n;
           let s = Bytes.sub_string buf 0 !total in
           if
             String.length s >= 4
             && (String.index_opt s '\n' <> None)
           then fin := true
     done
   with Unix.Unix_error _ -> ());
  let s = Bytes.sub_string buf 0 !total in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      Some line

let handle t ~snapshot fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.;
  (match read_request_line fd with
  | None -> ()
  | Some line -> (
      match String.split_on_char ' ' line with
      | meth :: path :: _ when meth <> "GET" ->
          ignore path;
          respond fd ~code:405 ~content_type:"text/plain" "GET only\n"
      | _ :: path :: _ -> (
          match path with
          | "/metrics" ->
              let body = X3_obs.Export.prometheus (snapshot ()) in
              respond fd ~code:200
                ~content_type:"text/plain; version=0.0.4" body
          | "/healthz" ->
              respond fd ~code:200 ~content_type:"text/plain" "ok\n"
          | "/readyz" ->
              if Atomic.get t.ready then
                respond fd ~code:200 ~content_type:"text/plain" "ok\n"
              else
                respond fd ~code:503 ~content_type:"text/plain"
                  "not ready\n"
          | _ ->
              respond fd ~code:404 ~content_type:"text/plain" "not found\n")
      | _ -> respond fd ~code:400 ~content_type:"text/plain" "bad request\n"));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t ~snapshot =
  let running = ref true in
  while !running do
    match Unix.accept t.sock with
    | fd, _ -> (
        try handle t ~snapshot fd
        with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* The listening socket was closed under us: orderly stop. *)
        running := false
    | exception _ -> running := false
  done

let start ?(port = 0) ~snapshot () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      ready = Atomic.make false;
      closed = false;
      lock = Mutex.create ();
      thread = None;
    }
  in
  t.thread <- Some (Thread.create (fun () -> accept_loop t ~snapshot) ());
  t

let port t = t.port
let set_ready t v = Atomic.set t.ready v
let ready t = Atomic.get t.ready

let stop t =
  let th =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          (try Unix.close t.sock with Unix.Unix_error _ -> ());
          t.thread
        end)
  in
  match th with None -> () | Some th -> Thread.join th
