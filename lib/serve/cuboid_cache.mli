(** A byte-budgeted LRU cache charged to a {!X3_core.Governor.account}.

    Every entry carries its estimated resident bytes (the caller costs it
    via the relevant [approx_bytes]); insertion reserves those bytes on
    the cache's dedicated account and evicts least-recently-used entries
    until the reservation fits — so the cache's footprint is bounded by
    the account's budget and visible in the governor's pool like any
    query's. Eviction calls [on_evict] so the owner can unlink dependent
    entries (a cached document's cuboid views die with it).

    Not thread-safe by itself at the value level, but every operation is
    internally mutex-protected, so concurrent [find]/[insert] from
    connection threads are safe. *)

type 'a t

val create :
  ?on_evict:(string -> 'a -> unit) ->
  ?observe_walk:(seconds:float -> victims:int -> unit) ->
  account:X3_core.Governor.account ->
  unit ->
  'a t
(** [account] should be dedicated to this cache — {!resident_bytes} reads
    it, and eviction releases into it. [on_evict key value] runs after
    the entry has been removed and its bytes released (do not re-insert
    from inside it). [observe_walk] fires after an {!insert} that had to
    evict, with the time spent selecting and detaching victims and their
    count — the owner's hook for an eviction-walk latency histogram.
    Called outside the cache lock, after the deferred [on_evict]
    callbacks have run. *)

val find : 'a t -> string -> 'a option
(** Bumps the entry's recency on hit; counts a hit or a miss. *)

val mem : 'a t -> string -> bool
(** No recency bump, no hit/miss accounting — an existence probe. *)

val insert : 'a t -> key:string -> bytes:int -> 'a -> bool
(** Reserve [bytes] (evicting LRU entries as needed) and store the value;
    replaces an existing entry under the same key (releasing its bytes).
    [false] when the value cannot fit even in an empty cache — the entry
    is simply not cached, which is degraded service, not an error. *)

val remove : 'a t -> string -> unit
(** Drop one entry (releasing its bytes, firing [on_evict]); no-op when
    absent. Counted as an eviction. *)

val snapshot : 'a t -> (string * 'a * int) list
(** Every resident entry as [(key, value, bytes)], least recently used
    first — replaying the list through {!insert} reconstructs the same
    recency order.  No recency bump, no hit/miss accounting; the
    warm-restart snapshot reads the cache without disturbing it. *)

val entries : 'a t -> int
val resident_bytes : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
