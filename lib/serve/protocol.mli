(** The serve wire protocol: length-prefixed JSON frames.

    One frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON (one {!X3_obs.Json} document). Both sides speak the
    same framing; payloads are capped so a hostile peer cannot ask the
    daemon to buffer gigabytes ({!default_max_frame_bytes}).

    Requests:
    {v
    {"verb": "cube", "query": "<X^3 text>", "doc": "path.xml",
     "algorithm": "COUNTER", "format": "csv", "no_cache": false,
     "deadline_ms": 5000, "retries": 2}
    {"verb": "ingest", "doc": "path.xml", "fragment": "<pub>...</pub>"}
    {"verb": "stats"}   {"verb": "trace", "name": "r-000042"}
    {"verb": "ping"}    {"verb": "shutdown"}
    v}

    Responses:
    {v
    {"status": "ok", "payload": "...", "provenance":
       {"base": 1, "rollup": 6, "cached": 0}, "seconds": 0.01,
     "partial": "deadline", "request_id": "r-000042"}
    {"status": "stats", "payload": { ...x3-metrics/1 document... }}
    {"status": "pong"}  {"status": "bye"}
    {"status": "error", "code": "...", "message": "..."}
    v} *)

val default_max_frame_bytes : int
(** 16 MiB — generous for any cube export the tests produce, small
    enough that a hostile length prefix cannot exhaust memory. *)

(** {1 Framing} *)

type frame_error =
  | Closed  (** orderly EOF before or inside a frame *)
  | Too_large of int  (** announced payload length over the cap *)
  | Timed_out  (** the socket deadline passed mid-frame or while idle *)
  | Frame_fault of string  (** an I/O error other than EPIPE/EINTR retry *)

val frame_error_message : frame_error -> string

val wait_readable :
  ?deadline:float -> Unix.file_descr -> (unit, frame_error) result
(** Block until [fd] has bytes to read (or [deadline] passes). Lets the
    server wait out a connection's idle gap {e before} starting the
    per-frame clock, so frame-read latency histograms measure the wire,
    not the client's think time. *)

val read_frame :
  ?max_bytes:int ->
  ?deadline:float ->
  ?fault:Net_fault.t ->
  Unix.file_descr ->
  (string, frame_error) result
(** Read one frame.  Partial reads resume; [EINTR] restarts the op and
    [EAGAIN] waits for readiness instead of busy-retrying.  [deadline]
    is an absolute [Unix.gettimeofday] instant bounding the whole frame
    (including the idle wait for its first byte) — the slow-loris
    defense; past it the result is [Error Timed_out].  [fault] consults
    a {!Net_fault} plan before every syscall. *)

val write_frame :
  ?deadline:float ->
  ?fault:Net_fault.t ->
  Unix.file_descr ->
  string ->
  (unit, frame_error) result
(** Write one frame.  Loops on partial writes so a slow TCP socket never
    corrupts the frame stream; [EPIPE]/[ECONNRESET] surface as [Closed],
    not an exception (the daemon must survive a client that died
    mid-response).  [deadline] bounds the whole frame — a reader that
    never drains us is timed out, not waited on forever. *)

(** {1 Requests and responses} *)

type request =
  | Cube of {
      query : string;  (** X^3 query text, compiled server-side *)
      doc : string option;  (** overrides the query's [doc(...)] path *)
      algorithm : string option;  (** cold-path algorithm, default COUNTER *)
      format : string;  (** ["csv"] or ["json"] *)
      no_cache : bool;  (** bypass the cuboid cache (cold reference run) *)
      deadline_ms : int option;
          (** compute budget in milliseconds, enforced server-side
              through the engine's Context deadline *)
      retries : int option;
          (** transient-fault retry budget for the cold path, forwarded
              to [Engine.run_safe] *)
      request_id : string option;
          (** client-chosen correlation id; the server echoes it in
              [Cube_ok] and tags the request's trace/access-log records
              with it (a server-assigned ["r-%06d"] id is used when the
              client sends none) *)
    }
  | Ingest of {
      doc : string;  (** document path the fragment belongs to *)
      fragment : string;
          (** one XML element, appended as a new child of the document
              root; durably logged to the ingest WAL before any state
              changes, then folded into resident sessions cell-by-cell *)
    }
  | Stats  (** dump the daemon's x3-metrics/1 document *)
  | Trace of { name : string option }
      (** fetch recent slow-query captures: the spool listing when [name]
          is [None], one capture's Chrome-trace JSON when it names a
          spooled request id *)
  | Ping
  | Shutdown

type provenance = {
  p_base : int;  (** cuboids answered by a base witness-table scan *)
  p_rollup : int;  (** cuboids rolled up from a cached/finer view *)
  p_cached : int;  (** cuboids served directly from the cache *)
}

type response =
  | Cube_ok of {
      payload : string;
      provenance : provenance;
      seconds : float;
      partial : string option;
          (** [Some reason] when the answer is a typed partial cube —
              the engine stopped at its deadline or budget but exported
              what it had (mirrors CLI exit code 4) *)
      request_id : string option;
          (** the id this request ran under — the client's own id echoed
              back, or the server-assigned one *)
    }
  | Ingest_ok of {
      lsn : int;  (** the fragment's WAL sequence number, now durable *)
      sessions : int;  (** resident sessions patched cell-by-cell *)
      cells : int;  (** view cells touched across those sessions *)
      fallbacks : int;
          (** sessions whose delta could not be proven sound and were
              flushed for a lazy cold rebuild instead (see the
              [serve.ingest.fallbacks.*] counters for reasons) *)
    }
  | Stats_ok of X3_obs.Json.t
  | Trace_ok of X3_obs.Json.t
  | Pong
  | Bye
  | Failed of { code : string; message : string }

(** {1 Error taxonomy}

    Wire error codes mirror the CLI's exit codes so scripted clients can
    treat a served query exactly like a local [x3 cube] run:

    {t | code | exit | retryable |
       |------|------|-----------|
       | [corrupt] | 2 | no |
       | [io_fault] | 3 | yes |
       | [timeout], [cancelled] | 4 | [cancelled] only |
       | [over_budget], [rejected], [input_too_large], [frame_too_large] | 5 | [rejected] only |
       | [shutting_down] | 1 | yes |
       | anything else ([bad_query], ...) | 1 | no |} *)

val exit_code_of_error : string -> int
(** Map a [Failed.code] to the CLI exit code (0–5 taxonomy). *)

val retryable_error : string -> bool
(** Whether a fresh attempt at the same request may succeed with no
    client-side change: transient I/O, admission overload, a drain that
    cancelled us, a daemon mid-restart. *)

val request_to_json : request -> X3_obs.Json.t
val request_of_json : X3_obs.Json.t -> (request, string) result
val response_to_json : response -> X3_obs.Json.t
val response_of_json : X3_obs.Json.t -> (response, string) result

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> (request, string) result
val decode_response : string -> (response, string) result
