(** The serve wire protocol: length-prefixed JSON frames.

    One frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON (one {!X3_obs.Json} document). Both sides speak the
    same framing; payloads are capped so a hostile peer cannot ask the
    daemon to buffer gigabytes ({!default_max_frame_bytes}).

    Requests:
    {v
    {"verb": "cube", "query": "<X^3 text>", "doc": "path.xml",
     "algorithm": "COUNTER", "format": "csv", "no_cache": false}
    {"verb": "stats"}   {"verb": "ping"}   {"verb": "shutdown"}
    v}

    Responses:
    {v
    {"status": "ok", "payload": "...", "provenance":
       {"base": 1, "rollup": 6, "cached": 0}, "seconds": 0.01}
    {"status": "stats", "payload": { ...x3-metrics/1 document... }}
    {"status": "pong"}  {"status": "bye"}
    {"status": "error", "code": "...", "message": "..."}
    v} *)

val default_max_frame_bytes : int
(** 16 MiB — generous for any cube export the tests produce, small
    enough that a hostile length prefix cannot exhaust memory. *)

(** {1 Framing} *)

type frame_error =
  | Closed  (** orderly EOF before or inside a frame *)
  | Too_large of int  (** announced payload length over the cap *)
  | Frame_fault of string  (** an I/O error other than EPIPE/EINTR retry *)

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, frame_error) result
(** Blocking read of one frame; retries [EINTR]/[EAGAIN]. *)

val write_frame : Unix.file_descr -> string -> (unit, frame_error) result
(** Blocking write of one frame; [EPIPE]/[ECONNRESET] surface as
    [Closed], not an exception (the daemon must survive a client that
    died mid-response). *)

(** {1 Requests and responses} *)

type request =
  | Cube of {
      query : string;  (** X^3 query text, compiled server-side *)
      doc : string option;  (** overrides the query's [doc(...)] path *)
      algorithm : string option;  (** cold-path algorithm, default COUNTER *)
      format : string;  (** ["csv"] or ["json"] *)
      no_cache : bool;  (** bypass the cuboid cache (cold reference run) *)
    }
  | Stats  (** dump the daemon's x3-metrics/1 document *)
  | Ping
  | Shutdown

type provenance = {
  p_base : int;  (** cuboids answered by a base witness-table scan *)
  p_rollup : int;  (** cuboids rolled up from a cached/finer view *)
  p_cached : int;  (** cuboids served directly from the cache *)
}

type response =
  | Cube_ok of { payload : string; provenance : provenance; seconds : float }
  | Stats_ok of X3_obs.Json.t
  | Pong
  | Bye
  | Failed of { code : string; message : string }

val request_to_json : request -> X3_obs.Json.t
val request_of_json : X3_obs.Json.t -> (request, string) result
val response_to_json : response -> X3_obs.Json.t
val response_of_json : X3_obs.Json.t -> (response, string) result

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> (request, string) result
val decode_response : string -> (response, string) result
