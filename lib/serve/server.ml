module Engine = X3_core.Engine
module Context = X3_core.Context
module Governor = X3_core.Governor
module Export = X3_core.Export
module Materialized = X3_core.Materialized
module Cube_result = X3_core.Cube_result
module Lattice = X3_lattice.Lattice
module Json = X3_obs.Json
module Metrics = X3_obs.Metrics
module Obs_export = X3_obs.Export
module Trace = X3_obs.Trace
module Wal = X3_storage.Wal
module Tree = X3_xml.Tree

type address = Unix_sock of string | Tcp of string * int

type config = {
  address : address;
  cache_bytes : int;
  max_in_flight : int;
  max_waiting : int;
  admission_timeout : float option;
  workers : int;
  max_input_bytes : int option;
  max_frame_bytes : int;
  io_deadline : float option;
  drain_deadline : float;
  snapshot_path : string option;
  wal_path : string option;
  fault : Net_fault.t option;
  access_log_path : string option;
  access_log_max_bytes : int;
  prom_port : int option;
  slow_ms : float option;
  trace_dir : string option;
  trace_cap : int;
}

let default_config address =
  {
    address;
    cache_bytes = 64 * 1024 * 1024;
    max_in_flight = 4;
    max_waiting = 16;
    admission_timeout = None;
    workers = 1;
    max_input_bytes = None;
    max_frame_bytes = Protocol.default_max_frame_bytes;
    io_deadline = Some 30.0;
    drain_deadline = 5.0;
    snapshot_path = None;
    wal_path = None;
    fault = None;
    access_log_path = None;
    access_log_max_bytes = Access_log.default_max_bytes;
    prom_port = None;
    slow_ms = None;
    trace_dir = None;
    trace_cap = 32;
  }

let build_version = "0.1.0"

(* One cache holds both granularities: a [Doc] is a prepared query's
   session (document + witness table + layout, charged at its resident
   table bytes) and a [View] is one materialised cuboid (charged via
   [Materialized.approx_bytes]). Evicting a document takes its views
   with it — they reference its dictionaries, and serving them without
   their session would silently decouple cache content from cache
   accounting. *)
type cached = Doc of doc_entry | View of Materialized.t

and doc_entry = {
  de_key : string;
  de_session : Engine.Session.t;
  de_query : string;  (* the snapshot needs the original request text *)
  de_doc_path : string;
  mutable de_views : string list;  (* cache keys of this doc's views *)
  mutable de_wal_lsn : int;
      (* ingest-WAL high-water already folded into this session *)
}

(* Per-connection state, registered so shutdown can tell idle
   connections (parked in read_frame) from busy ones (a request in
   flight whose response the drain should wait for). *)
type conn_state = { c_fd : Unix.file_descr; mutable c_busy : bool }

(* Per-request observability record, filled in by the handlers as the
   request progresses and consumed by the access log and the per-verb /
   per-provenance histograms once the response is known. *)
type req_info = {
  mutable ri_verb : string;
  mutable ri_doc : string option;  (* document path, digested for the log *)
  mutable ri_cells : int;
  mutable ri_provenance : Protocol.provenance option;
  mutable ri_admission_wait : float;
}

let new_req_info () =
  {
    ri_verb = "unknown";
    ri_doc = None;
    ri_cells = 0;
    ri_provenance = None;
    ri_admission_wait = 0.;
  }

type t = {
  cfg : config;
  registry : Metrics.t;
  door : Governor.Admission.t;
  cache_pool : Governor.t;
  cache_account : Governor.account;
  cache : cached Cuboid_cache.t;
  compute_lock : Mutex.t;
  listen_fd : Unix.file_descr;
  (* Atomics, not a mutex-guarded bool: [stop] must be callable from a
     signal handler, where taking a lock the interrupted thread holds
     would deadlock. *)
  running : bool Atomic.t;
  shutdown_cancel : bool Atomic.t;
  conn_lock : Mutex.t;
  conns : (Unix.file_descr, conn_state) Hashtbl.t;
  mutable fault : Net_fault.t option;
  state_lock : Mutex.t;
  wal : Wal.t option;
  (* Per document, its ingested fragments (LSN ascending) — replayed from
     the WAL at startup, extended on each ingest. Guarded by
     [compute_lock], like all session mutation. *)
  wal_frags : (string, (int * Tree.element) list ref) Hashtbl.t;
  (* metric handles, interned once *)
  m_requests : Metrics.counter;
  m_errors : Metrics.counter;
  m_rejected : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_evictions : Metrics.counter;
  m_cuboids_base : Metrics.counter;
  m_cuboids_rollup : Metrics.counter;
  m_cuboids_cached : Metrics.counter;
  m_docs_loaded : Metrics.counter;
  m_net_timeouts : Metrics.counter;
  m_accept_retries : Metrics.counter;
  m_restored_docs : Metrics.counter;
  m_restored_views : Metrics.counter;
  m_ingests : Metrics.counter;
  m_ingest_cells : Metrics.counter;
  m_ingest_fallbacks : Metrics.counter;
  m_resident : Metrics.gauge;
  m_entries : Metrics.gauge;
  m_lat_request : Metrics.histogram;
  m_lat_compute : Metrics.histogram;
  m_lat_admission : Metrics.histogram;
  m_lat_frame_read : Metrics.histogram;
  m_lat_frame_write : Metrics.histogram;
  m_slow_captured : Metrics.counter;
  started_at : float;
  req_ids : int Atomic.t;
  access_log : Access_log.t option;
  mutable http : Http_endpoint.t option;
  (* slow-query capture spool, newest first; guarded by [state_lock] *)
  mutable trace_spool : (string * string) list;
}

(* --- socket plumbing ----------------------------------------------------- *)

let bind_listen address =
  match address with
  | Unix_sock path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64;
         Ok fd
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         Error
           (Printf.sprintf "cannot listen on %s: %s" path
              (Unix.error_message e)))
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | exception Failure _ -> Error ("bad listen address: " ^ host)
      | addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, port));
            Unix.listen fd 64;
            Ok fd
          with Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "cannot listen on %s:%d: %s" host port
                 (Unix.error_message e))))

(* forward declaration pattern: the snapshot restore runs inside [create]
   but needs the session-loading helpers defined below; thread through a
   ref to keep the file in reading order. *)
let restore_hook : (t -> unit) ref = ref (fun _ -> ())

(* --- ingest WAL plumbing ------------------------------------------------- *)

(* WAL record payload: [u32 LE doc-path length | doc path | fragment XML].
   The fragment is logged as the raw text the client sent; replay
   re-parses it. *)
let encode_ingest_payload ~doc_path ~fragment =
  let b =
    Buffer.create (4 + String.length doc_path + String.length fragment)
  in
  let len = String.length doc_path in
  for shift = 0 to 3 do
    Buffer.add_char b (Char.chr ((len lsr (8 * shift)) land 0xFF))
  done;
  Buffer.add_string b doc_path;
  Buffer.add_string b fragment;
  Buffer.contents b

let decode_ingest_payload payload =
  if String.length payload < 4 then Error "ingest record: truncated header"
  else begin
    let u8 p = Char.code payload.[p] in
    let len = u8 0 lor (u8 1 lsl 8) lor (u8 2 lsl 16) lor (u8 3 lsl 24) in
    if len < 0 || 4 + len > String.length payload then
      Error "ingest record: truncated path"
    else
      Ok
        ( String.sub payload 4 len,
          String.sub payload (4 + len) (String.length payload - 4 - len) )
  end

let doc_frags wal_frags doc_path =
  match Hashtbl.find_opt wal_frags doc_path with Some l -> !l | None -> []

let doc_high_water wal_frags doc_path =
  List.fold_left (fun acc (lsn, _) -> max acc lsn) 0
    (doc_frags wal_frags doc_path)

let record_frag wal_frags ~doc_path ~lsn fragment =
  match Hashtbl.find_opt wal_frags doc_path with
  | Some l -> l := !l @ [ (lsn, fragment) ]
  | None -> Hashtbl.replace wal_frags doc_path (ref [ (lsn, fragment) ])

(* Rebuild the per-document fragment index from a recovered log. A record
   that no longer decodes or parses is skipped with a warning — it can
   only patch nothing, never corrupt (the cold path simply won't graft
   it either). *)
let replay_wal_index wal =
  let wal_frags = Hashtbl.create 8 in
  let skip lsn msg =
    Printf.eprintf "x3 serve: wal record %d skipped: %s\n%!" lsn msg
  in
  List.iter
    (fun { Wal.lsn; payload } ->
      match decode_ingest_payload payload with
      | Error msg -> skip lsn msg
      | Ok (doc_path, fragment) -> (
          match X3_xml.Parser.parse fragment with
          | Error e -> skip lsn (Format.asprintf "%a" X3_xml.Parser.pp_error e)
          | Ok d -> record_frag wal_frags ~doc_path ~lsn d.Tree.root))
    (Wal.records wal);
  wal_frags

let create cfg =
  (* A client that dies mid-response turns writes into EPIPE errors we
     handle; without this it would be a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match bind_listen cfg.address with
  | Error _ as e -> e
  | Ok listen_fd -> (
      match
        match cfg.wal_path with
        | None -> Ok None
        | Some path -> (
            match Wal.open_file path with
            | wal -> Ok (Some wal)
            | exception e ->
                Error
                  (Printf.sprintf "cannot open ingest WAL %s: %s" path
                     (Printexc.to_string e)))
      with
      | Error msg ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Error msg
      | Ok wal ->
      let wal_frags =
        match wal with
        | None -> Hashtbl.create 1
        | Some wal ->
            if Wal.dropped_bytes wal > 0 then
              Printf.eprintf
                "x3 serve: wal recovery dropped %d torn bytes\n%!"
                (Wal.dropped_bytes wal);
            replay_wal_index wal
      in
      let registry = Metrics.create () in
      Option.iter (fun w -> Wal.attach_metrics w registry) wal;
      Metrics.set
        (Metrics.gauge registry
           (Metrics.labeled "build_info"
              [ ("version", build_version); ("ocaml", Sys.ocaml_version) ]))
        1;
      let cache_pool = Governor.create ~max_bytes:cfg.cache_bytes () in
      let cache_account = Governor.open_account (Some cache_pool) in
      (* The eviction hook needs the cache itself (a document takes its
         views down with it), so tie the knot through a ref. *)
      let cache_ref = ref None in
      let on_evict _key = function
        | Doc d -> (
            match !cache_ref with
            | Some cache ->
                List.iter (fun vk -> Cuboid_cache.remove cache vk) d.de_views
            | None -> ())
        | View _ -> ()
      in
      let m_evict_walk =
        Metrics.histogram registry "serve.latency.cache_evict_walk"
      in
      let observe_walk ~seconds ~victims:_ =
        Metrics.observe m_evict_walk seconds
      in
      let cache =
        Cuboid_cache.create ~on_evict ~observe_walk ~account:cache_account ()
      in
      cache_ref := Some cache;
      let t =
        {
          cfg;
          registry;
          door =
            Governor.Admission.create ~max_in_flight:cfg.max_in_flight
              ~max_waiting:cfg.max_waiting ();
          cache_pool;
          cache_account;
          cache;
          compute_lock = Mutex.create ();
          listen_fd;
          running = Atomic.make true;
          shutdown_cancel = Atomic.make false;
          conn_lock = Mutex.create ();
          conns = Hashtbl.create 16;
          fault = cfg.fault;
          state_lock = Mutex.create ();
          wal;
          wal_frags;
          m_requests = Metrics.counter registry "serve.requests.total";
          m_errors = Metrics.counter registry "serve.requests.errors";
          m_rejected = Metrics.counter registry "serve.requests.rejected";
          m_cache_hits = Metrics.counter registry "serve.cache.hits";
          m_cache_misses = Metrics.counter registry "serve.cache.misses";
          m_cache_evictions = Metrics.counter registry "serve.cache.evictions";
          m_cuboids_base = Metrics.counter registry "serve.cuboids.base";
          m_cuboids_rollup = Metrics.counter registry "serve.cuboids.rollup";
          m_cuboids_cached = Metrics.counter registry "serve.cuboids.cached";
          m_docs_loaded = Metrics.counter registry "serve.docs.loaded";
          m_net_timeouts = Metrics.counter registry "serve.net.timeouts";
          m_accept_retries = Metrics.counter registry "serve.net.accept_retries";
          m_restored_docs = Metrics.counter registry "serve.cache.restored_docs";
          m_restored_views =
            Metrics.counter registry "serve.cache.restored_views";
          m_ingests = Metrics.counter registry "serve.ingest.total";
          m_ingest_cells = Metrics.counter registry "serve.ingest.cells";
          m_ingest_fallbacks =
            Metrics.counter registry "serve.ingest.fallbacks";
          m_resident = Metrics.gauge registry "serve.cache.resident_bytes";
          m_entries = Metrics.gauge registry "serve.cache.entries";
          m_lat_request = Metrics.histogram registry "serve.latency.request";
          m_lat_compute = Metrics.histogram registry "serve.latency.compute";
          m_lat_admission =
            Metrics.histogram registry "serve.latency.admission_wait";
          m_lat_frame_read =
            Metrics.histogram registry "serve.latency.frame_read";
          m_lat_frame_write =
            Metrics.histogram registry "serve.latency.frame_write";
          m_slow_captured =
            Metrics.counter registry "serve.slow_traces.captured";
          started_at = Unix.gettimeofday ();
          req_ids = Atomic.make 1;
          access_log =
            Option.map
              (fun p ->
                Access_log.create ~max_bytes:cfg.access_log_max_bytes
                  ~metrics:registry p)
              cfg.access_log_path;
          http = None;
          trace_spool = [];
        }
      in
      (* The scrape endpoint comes up before warm restore so /readyz
         truthfully answers "not yet" while the restore and WAL replay
         run; it flips ready only once the daemon can serve. *)
      match
        match cfg.prom_port with
        | None -> Ok None
        | Some port -> (
            match Http_endpoint.start ~port ~snapshot:(fun () ->
                Metrics.snapshot registry) ()
            with
            | ep -> Ok (Some ep)
            | exception Unix.Unix_error (e, _, _) ->
                Error
                  (Printf.sprintf "cannot bind prometheus endpoint on %d: %s"
                     port (Unix.error_message e)))
      with
      | Error msg ->
          Option.iter Access_log.close t.access_log;
          Option.iter Wal.close wal;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Error msg
      | Ok ep ->
          t.http <- ep;
          !restore_hook t;
          Option.iter (fun ep -> Http_endpoint.set_ready ep true) t.http;
          Ok t)

let registry t = t.registry
let set_fault t fault = t.fault <- fault
let prom_port t = Option.map Http_endpoint.port t.http

let live_connections t =
  Mutex.lock t.conn_lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conn_lock;
  n

let refresh_gauges t =
  Metrics.set t.m_resident (Cuboid_cache.resident_bytes t.cache);
  Metrics.set t.m_entries (Cuboid_cache.entries t.cache)

let stats_document t =
  refresh_gauges t;
  let now = Unix.gettimeofday () in
  let meta =
    [
      ("server", Json.Str "x3 serve");
      ("version", Json.Str build_version);
      ("started_at", Json.Float t.started_at);
      ("serve.uptime_ms", Json.Int (int_of_float ((now -. t.started_at) *. 1000.)));
      ("cache_bytes", Json.Int t.cfg.cache_bytes);
      ("cache_used_bytes", Json.Int (Cuboid_cache.resident_bytes t.cache));
      ("max_in_flight", Json.Int t.cfg.max_in_flight);
      ("admitted_total", Json.Int (Governor.Admission.admitted_total t.door));
      ("rejected_total", Json.Int (Governor.Admission.rejected_total t.door));
      ("live_connections", Json.Int (live_connections t));
    ]
  in
  Obs_export.metrics_json ~meta (Metrics.snapshot t.registry)

(* --- loading and serving ------------------------------------------------- *)

let make_pool () =
  X3_storage.Buffer_pool.create ~capacity_pages:65536
    (X3_storage.Disk.in_memory ~page_size:8192 ())

let session_key ~doc_path ~query =
  Digest.to_hex (Digest.string (doc_path ^ "\x00" ^ query))

let view_key skey cid = Printf.sprintf "view:%s:%d" skey cid
let doc_key skey = "doc:" ^ skey

exception Reply of Protocol.response

let fail code fmt =
  Printf.ksprintf (fun message -> raise (Reply (Protocol.Failed { code; message }))) fmt

let check_input_cap t doc_path =
  match t.cfg.max_input_bytes with
  | None -> ()
  | Some cap -> (
      match (Unix.stat doc_path).Unix.st_size with
      | size when size > cap ->
          fail "input_too_large" "%s is %d bytes, over the %d-byte cap"
            doc_path size cap
      | _ -> ()
      | exception Unix.Unix_error _ -> ())

(* Functionally rebuild the document with its ingested fragments grafted
   as trailing children of the root, LSN order — the cold path's view of
   every durably ingested fact. [upto] bounds the graft for warm restore,
   which replays later fragments as deltas instead. *)
let graft_fragments t doc ~doc_path ~upto =
  let frags =
    List.filter_map
      (fun (lsn, el) -> if lsn <= upto then Some (Tree.Element el) else None)
      (doc_frags t.wal_frags doc_path)
  in
  if frags = [] then doc
  else begin
    let root = doc.Tree.root in
    { doc with Tree.root = { root with Tree.children = root.Tree.children @ frags } }
  end

let load_session ?(graft_upto = max_int) t ~doc_path ~spec =
  check_input_cap t doc_path;
  match X3_xml.Parser.parse_file_with_dtd doc_path with
  | Error e ->
      fail "bad_document" "%s" (Format.asprintf "%a" X3_xml.Parser.pp_error e)
  | Ok (doc, _dtd) ->
      let doc = graft_fragments t doc ~doc_path ~upto:graft_upto in
      let store = X3_xdb.Store.of_document doc in
      let prepared = Engine.prepare ~pool:(make_pool ()) ~store spec in
      Metrics.inc t.m_docs_loaded;
      let session = Engine.Session.create ~workers:t.cfg.workers prepared in
      (* Every session cooperates with drain: once the drain deadline
         passes, the next checkpoint in any compute on this session
         stops it with a typed Cancelled. *)
      Context.set_cancel_hook
        (Engine.Session.context session)
        (fun () -> Atomic.get t.shutdown_cancel);
      session

(* The resident session for (doc, query): served from the cache when
   possible, loaded (and offered to the cache) otherwise. Runs under the
   compute lock. *)
let acquire_session t ~skey ~doc_path ~query ~spec =
  let dkey = doc_key skey in
  let fresh () =
    let session = load_session t ~doc_path ~spec in
    {
      de_key = skey;
      de_session = session;
      de_query = query;
      de_doc_path = doc_path;
      de_views = [];
      (* every durable fragment was just grafted into the document *)
      de_wal_lsn = doc_high_water t.wal_frags doc_path;
    }
  in
  match Cuboid_cache.find t.cache dkey with
  | Some (Doc d) ->
      Metrics.inc t.m_cache_hits;
      d
  | Some (View _) ->
      (* Impossible by key construction; treat as a miss. *)
      Cuboid_cache.remove t.cache dkey;
      Metrics.inc t.m_cache_misses;
      fresh ()
  | None ->
      Metrics.inc t.m_cache_misses;
      let entry = fresh () in
      let bytes = Engine.Session.table_bytes entry.de_session in
      (* [false] = too big for the whole budget: serve this request from
         the transient session and cache nothing — degraded, not an
         error. *)
      ignore (Cuboid_cache.insert t.cache ~key:dkey ~bytes (Doc entry) : bool);
      entry

(* Answer every cuboid of the lattice, finest first, preferring cached
   views, then rollup from a view this request already holds (soundness
   checked against the observed properties by [Session.rollup]), then a
   base scan. Returns the views in lattice order plus provenance. *)
let serve_cuboids t entry =
  let session = entry.de_session in
  let lattice = Engine.lattice (Engine.Session.prepared session) in
  let order = Lattice.by_degree lattice in
  let obtained = Hashtbl.create (Array.length order) in
  let obtained_order = ref [] in
  let base = ref 0 and rolled = ref 0 and cached = ref 0 in
  let doc_cached = Cuboid_cache.mem t.cache (doc_key entry.de_key) in
  Array.iter
    (fun cid ->
      let vkey = view_key entry.de_key cid in
      let view =
        match Cuboid_cache.find t.cache vkey with
        | Some (View v) ->
            Metrics.inc t.m_cache_hits;
            Metrics.inc t.m_cuboids_cached;
            incr cached;
            v
        | Some (Doc _) | None ->
            Metrics.inc t.m_cache_misses;
            (* Nearest finer view first: the most recently obtained views
               are the highest-degree (most relaxed) ones that are still
               finer than [cid], so the rollup merges the fewest groups. *)
            let from_rollup =
              List.find_map
                (fun finer_cid ->
                  match
                    Engine.Session.rollup session
                      (Hashtbl.find obtained finer_cid)
                      ~coarser:cid
                  with
                  | Ok v -> Some v
                  | Error _ -> None)
                !obtained_order
            in
            let v =
              match from_rollup with
              | Some v ->
                  Metrics.inc t.m_cuboids_rollup;
                  incr rolled;
                  Trace.instant "serve.rollup"
                    ~attrs:[ ("cuboid", Trace.Int cid) ];
                  v
              | None ->
                  Metrics.inc t.m_cuboids_base;
                  incr base;
                  Engine.Session.materialize session ~cuboid:cid
            in
            (* Offer the fresh view to the cache — only while its document
               is resident, so view bytes never outlive their session's
               accounting. *)
            if doc_cached then begin
              let bytes = Materialized.approx_bytes v in
              if Cuboid_cache.insert t.cache ~key:vkey ~bytes (View v) then
                entry.de_views <- vkey :: entry.de_views
            end;
            v
      in
      Hashtbl.replace obtained cid view;
      obtained_order := cid :: !obtained_order)
    order;
  let views =
    Array.to_list (Array.map (fun cid -> Hashtbl.find obtained cid) order)
  in
  ( views,
    { Protocol.p_base = !base; p_rollup = !rolled; p_cached = !cached } )

let export_string ~func ~format result =
  match format with
  | "csv" -> Export.csv_string ~func result
  | "json" -> Export.json_string ~func result
  | other -> fail "bad_format" "unknown format %S (expected csv or json)" other

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let no_provenance = { Protocol.p_base = 0; p_rollup = 0; p_cached = 0 }

let handle_cube t ~rid ~scope ~info ~query ~doc ~algorithm ~format ~no_cache
    ~deadline_ms ~retries =
  let compiled =
    match X3_ql.Compile.parse_and_compile query with
    | Ok c -> c
    | Error msg -> fail "bad_query" "%s" msg
  in
  let doc_path = Option.value doc ~default:compiled.X3_ql.Compile.document in
  info.ri_doc <- Some doc_path;
  let spec = compiled.X3_ql.Compile.spec in
  let deadline_at =
    Option.map
      (fun ms ->
        if ms <= 0 then fail "bad_request" "deadline_ms must be positive"
        else Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      deadline_ms
  in
  let admit0 = Unix.gettimeofday () in
  match
    Governor.Admission.admit ?max_wait:t.cfg.admission_timeout t.door
  with
  | Error rejection ->
      Metrics.inc t.m_rejected;
      fail "rejected" "%s"
        (Format.asprintf "%a" Governor.Admission.pp_rejection rejection)
  | Ok () ->
      let wait = Unix.gettimeofday () -. admit0 in
      info.ri_admission_wait <- wait;
      Metrics.observe t.m_lat_admission wait;
      Fun.protect
        ~finally:(fun () -> Governor.Admission.release t.door)
        (fun () ->
          (* The substrate under a session (buffer pool, context scratch)
             is unsynchronised, so all engine work is serialized; cache
             lookups stay concurrent. *)
          locked t.compute_lock (fun () ->
              (* Admission may have parked us across the start of a
                 drain; computing now would outlive the drain's census. *)
              if not (Atomic.get t.running) then
                fail "shutting_down" "server is draining";
              let t0 = Unix.gettimeofday () in
              let payload, provenance, partial =
                if no_cache then begin
                  (* The cold reference path: fresh load, fresh compute,
                     no cache reads or writes. The wire deadline/retry
                     budget rides the engine's own machinery. *)
                  let alg =
                    match algorithm with
                    | None -> Engine.Counter
                    | Some name -> (
                        match Engine.algorithm_of_string name with
                        | Some a -> a
                        | None -> fail "bad_algorithm" "unknown algorithm %s" name)
                  in
                  let session = load_session t ~doc_path ~spec in
                  let deadline =
                    Option.map (fun at -> at -. Unix.gettimeofday ()) deadline_at
                  in
                  match
                    Engine.run_safe ~workers:t.cfg.workers ?deadline ?retries
                      ~cancel:(fun () -> Atomic.get t.shutdown_cancel)
                      (Engine.Session.prepared session)
                      alg
                  with
                  | Engine.Complete (result, _instr) ->
                      info.ri_cells <- Cube_result.total_cells result;
                      ( export_string ~func:spec.Engine.func ~format result,
                        no_provenance,
                        None )
                  | Engine.Partial (reason, result, _instr) ->
                      (* A typed partial cube: what the engine had when
                         the deadline/cancel landed, clearly marked. *)
                      info.ri_cells <- Cube_result.total_cells result;
                      ( export_string ~func:spec.Engine.func ~format result,
                        no_provenance,
                        Some (Context.reason_name reason) )
                  | Engine.Failed (Engine.Corrupt msg) ->
                      fail "corrupt" "%s" msg
                  | Engine.Failed (Engine.Io_fault msg) ->
                      fail "io_fault" "%s" msg
                  | Engine.Rejected rejection ->
                      Metrics.inc t.m_rejected;
                      fail "rejected" "%s"
                        (Format.asprintf "%a" Governor.Admission.pp_rejection
                           rejection)
                end
                else begin
                  let skey = session_key ~doc_path ~query in
                  let entry =
                    acquire_session t ~skey ~doc_path ~query ~spec
                  in
                  match
                    (* [with_request] binds the request's trace scope to
                       the session context around the compute, so the
                       span tree this request emits is its own. *)
                    Engine.Session.with_request entry.de_session ?scope
                      ?deadline_at (fun () ->
                        let views, provenance = serve_cuboids t entry in
                        let result =
                          Engine.Session.result_of_views entry.de_session views
                        in
                        info.ri_cells <- Cube_result.total_cells result;
                        ( export_string ~func:spec.Engine.func ~format result,
                          provenance ))
                  with
                  | Ok (payload, provenance) -> (payload, provenance, None)
                  | Error Context.Deadline_exceeded ->
                      fail "timeout" "deadline of %d ms exceeded"
                        (Option.value ~default:0 deadline_ms)
                  | Error Context.Cancelled ->
                      fail "cancelled" "%s"
                        (if Atomic.get t.shutdown_cancel then
                           "server drained before completion"
                         else "request cancelled")
                  | Error Context.Over_budget ->
                      fail "over_budget" "cache-path compute over byte budget"
                end
              in
              let seconds = Unix.gettimeofday () -. t0 in
              Metrics.observe t.m_lat_compute seconds;
              info.ri_provenance <- Some provenance;
              Protocol.Cube_ok
                { payload; provenance; seconds; partial; request_id = Some rid }))

(* --- ingest -------------------------------------------------------------- *)

(* A session whose delta could not be proven sound is flushed: its next
   request rebuilds it cold from the grafted document, which is always
   exact. The typed reason lands on a per-reason counter and stderr. *)
let ingest_fallback t d reason message =
  Metrics.inc t.m_ingest_fallbacks;
  Metrics.inc (Metrics.counter t.registry ("serve.ingest.fallbacks." ^ reason));
  Printf.eprintf
    "x3 serve: ingest fallback (%s) for %s: %s; session flushed for cold \
     rebuild\n\
     %!"
    reason d.de_doc_path message;
  (* the eviction hook takes the views down with the document *)
  Cuboid_cache.remove t.cache (doc_key d.de_key)

(* Re-book a patched document and its views: the witness table and every
   patched view grew, and the cache account must stay honest, so the
   entries are removed and re-inserted at their new costs. An insert may
   refuse (budget) — the entry degrades to uncached, never an error. *)
let rebook_entry t d views =
  List.iter (fun (vk, _) -> Cuboid_cache.remove t.cache vk) views;
  d.de_views <- [];
  Cuboid_cache.remove t.cache (doc_key d.de_key);
  let bytes = Engine.Session.table_bytes d.de_session in
  if Cuboid_cache.insert t.cache ~key:(doc_key d.de_key) ~bytes (Doc d) then
    List.iter
      (fun (vk, v) ->
        if
          Cuboid_cache.insert t.cache ~key:vk
            ~bytes:(Materialized.approx_bytes v) (View v)
        then d.de_views <- vk :: d.de_views)
      views

(* Fold one durable fragment into one resident session: stage it against
   the fragment alone, append to the witness table, patch every cached
   view cell-by-cell. Runs under the compute lock. *)
let patch_entry t d ~lsn ~fragment =
  if lsn <= d.de_wal_lsn then `Patched 0 (* already folded in *)
  else begin
    let session = d.de_session in
    let spec = Engine.spec_of (Engine.Session.prepared session) in
    match
      Engine.stage_fragment spec ~fragment
        ~fact_id:(Engine.synthetic_fact_id ~lsn)
    with
    | Engine.Not_a_fact ->
        d.de_wal_lsn <- lsn;
        `Patched 0
    | Engine.Unsupported reason ->
        ingest_fallback t d "fragment_unsupported" reason;
        `Fallback
    | Engine.Staged staged -> (
        let views =
          List.filter_map
            (fun vk ->
              match Cuboid_cache.find t.cache vk with
              | Some (View v) -> Some (vk, v)
              | Some (Doc _) | None -> None)
            d.de_views
        in
        match
          Engine.Session.apply_delta session staged ~views:(List.map snd views)
        with
        | Error fb ->
            ingest_fallback t d
              (Engine.fallback_reason_name fb)
              (Format.asprintf "%a" Engine.pp_fallback fb);
            `Fallback
        | Ok (_rows, patched) ->
            d.de_wal_lsn <- lsn;
            rebook_entry t d views;
            `Patched patched)
  end

let handle_ingest t ~doc ~fragment =
  let frag_el =
    match X3_xml.Parser.parse fragment with
    | Ok d -> d.Tree.root
    | Error e ->
        (* refused before the WAL sees it: a malformed fragment must not
           become a durable record every restart re-reports *)
        fail "bad_fragment" "%s" (Format.asprintf "%a" X3_xml.Parser.pp_error e)
  in
  locked t.compute_lock (fun () ->
      if not (Atomic.get t.running) then
        fail "shutting_down" "server is draining";
      let wal =
        match t.wal with
        | Some w -> w
        | None -> fail "no_wal" "daemon started without --wal; ingest disabled"
      in
      (* Durability first: the fragment is logged and fsynced before any
         in-memory state changes, so a crash at any later point replays
         it from the log. *)
      let lsn =
        try
          let lsn =
            Wal.append wal (encode_ingest_payload ~doc_path:doc ~fragment)
          in
          Wal.commit wal;
          lsn
        with e ->
          fail "io_fault" "ingest WAL append failed: %s" (Printexc.to_string e)
      in
      Metrics.inc t.m_ingests;
      record_frag t.wal_frags ~doc_path:doc ~lsn frag_el;
      let sessions = ref 0 and cells = ref 0 and fallbacks = ref 0 in
      List.iter
        (fun (_key, value, _bytes) ->
          match value with
          | Doc d when String.equal d.de_doc_path doc -> (
              match patch_entry t d ~lsn ~fragment:frag_el with
              | `Patched n ->
                  incr sessions;
                  cells := !cells + n
              | `Fallback -> incr fallbacks)
          | Doc _ | View _ -> ())
        (Cuboid_cache.snapshot t.cache);
      Metrics.inc ~by:!cells t.m_ingest_cells;
      Protocol.Ingest_ok
        {
          lsn;
          sessions = !sessions;
          cells = !cells;
          fallbacks = !fallbacks;
        })

(* --- slow-query capture --------------------------------------------------- *)

(* Request ids are either server-assigned ("r-%06d") or client-chosen;
   a client-chosen id becomes a spool file name, so it is flattened to a
   safe charset first. *)
let sanitize_rid rid =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    (if rid = "" then "anonymous" else rid)

let capture_slow t ~rid ~scope ~seconds =
  match t.cfg.trace_dir with
  | None -> ()
  | Some dir -> (
      try
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
        let rid = sanitize_rid rid in
        let path = Filename.concat dir (rid ^ ".trace.json") in
        Json.to_file path (Obs_export.chrome_trace (Trace.scope_dump scope));
        Metrics.inc t.m_slow_captured;
        Trace.instant "serve.slow_capture"
          ~attrs:
            [ ("request_id", Trace.Str rid); ("seconds", Trace.Float seconds) ];
        let evicted =
          locked t.state_lock (fun () ->
              let spool =
                (rid, path)
                :: List.filter (fun (r, _) -> r <> rid) t.trace_spool
              in
              let rec split n = function
                | [] -> ([], [])
                | l when n = 0 -> ([], l)
                | x :: rest ->
                    let keep, drop = split (n - 1) rest in
                    (x :: keep, drop)
              in
              let keep, drop = split (max 1 t.cfg.trace_cap) spool in
              t.trace_spool <- keep;
              drop)
        in
        List.iter
          (fun (_r, p) -> try Sys.remove p with Sys_error _ -> ())
          evicted
      with e ->
        (* Losing a capture is degraded observability, never a failed
           request. *)
        Printf.eprintf "x3 serve: slow-trace capture for %s failed: %s\n%!"
          rid (Printexc.to_string e))

let handle_trace t ~name =
  let spool = locked t.state_lock (fun () -> t.trace_spool) in
  match name with
  | None ->
      Protocol.Trace_ok
        (Json.Obj
           [
             ( "captures",
               Json.Arr (List.map (fun (r, _) -> Json.Str r) spool) );
           ])
  | Some rid -> (
      let rid = sanitize_rid rid in
      match List.assoc_opt rid spool with
      | None -> fail "not_found" "no spooled trace for %S" rid
      | Some path -> (
          match
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | exception Sys_error msg -> fail "io_fault" "%s" msg
          | contents -> (
              match Json.parse contents with
              | Error msg -> fail "io_fault" "spooled trace unreadable: %s" msg
              | Ok doc -> Protocol.Trace_ok doc)))

(* --- warm restart -------------------------------------------------------- *)

(* Persist the cache index + views at drained shutdown. Runs under the
   compute lock (no session mutation while views are read); any
   per-document failure just drops that document from the snapshot. *)
let persist_snapshot t =
  match t.cfg.snapshot_path with
  | None -> ()
  | Some path ->
      locked t.compute_lock (fun () ->
          let docs =
            List.filter_map
              (fun (_key, value, _bytes) ->
                match value with Doc d -> Some d | View _ -> None)
              (Cuboid_cache.snapshot t.cache)
          in
          let snaps =
            List.filter_map
              (fun d ->
                match Digest.file d.de_doc_path with
                | exception _ -> None (* document gone; nothing to bind to *)
                | digest ->
                    let views =
                      List.filter_map
                        (fun vk ->
                          match Cuboid_cache.find t.cache vk with
                          | Some (View v) -> Some (Materialized.to_records v)
                          | Some (Doc _) | None -> None)
                        (List.rev d.de_views)
                    in
                    Some
                      {
                        Warm_store.ws_query = d.de_query;
                        ws_doc_path = d.de_doc_path;
                        ws_digest = digest;
                        ws_wal_lsn = d.de_wal_lsn;
                        ws_views = views;
                      })
              docs
          in
          match Warm_store.save ~path snaps with
          | Ok () -> ()
          | Error msg ->
              (* Snapshot loss is degraded service, never an error. *)
              Printf.eprintf "x3 serve: cache snapshot not saved: %s\n%!" msg)

(* Restore at startup: verify-on-load, then per document re-compile the
   query, re-check the document digest, re-parse with the WAL fragments
   up to the snapshot's LSN grafted in, re-intern each view against the
   fresh table, and replay any WAL records past the snapshot's high
   water on top. Any failure — checksum, digest drift, missing file,
   unknown group values, an unreplayable fragment — is a cold start for
   that document (or the whole cache), never an error. Each fallback
   records {e why} on a per-reason counter
   ([serve.cache.restore_failures.<reason>]) and one stderr line, so a
   fleet of daemons that quietly stopped restoring is diagnosable. *)
exception Restore_failure of string * string (* reason slug, detail *)

let restore_fail reason fmt =
  Printf.ksprintf (fun detail -> raise (Restore_failure (reason, detail))) fmt

let note_restore_failure t ~what (reason, detail) =
  Metrics.inc
    (Metrics.counter t.registry ("serve.cache.restore_failures." ^ reason));
  Printf.eprintf "x3 serve: cold start for %s (%s): %s\n%!" what reason detail

let restore_snapshot t =
  match t.cfg.snapshot_path with
  | None -> ()
  | Some path ->
      if Sys.file_exists path then begin
        match Warm_store.load ~path with
        | Error msg ->
            note_restore_failure t ~what:"cache" ("snapshot_corrupt", msg)
        | Ok docs ->
            List.iter
              (fun ds ->
                let doc_path = ds.Warm_store.ws_doc_path in
                let query = ds.Warm_store.ws_query in
                match
                  (match Digest.file doc_path with
                  | digest ->
                      if digest <> ds.Warm_store.ws_digest then
                        restore_fail "digest_mismatch"
                          "document bytes changed since snapshot"
                  | exception e ->
                      restore_fail "digest_mismatch" "cannot digest %s: %s"
                        doc_path (Printexc.to_string e));
                  let spec =
                    match X3_ql.Compile.parse_and_compile query with
                    | Ok c -> c.X3_ql.Compile.spec
                    | Error msg -> restore_fail "recompile_failed" "%s" msg
                  in
                  (* Facts up to the snapshot's high water are grafted into
                     the parsed document (they get real node ids, exactly
                     as at save time); later WAL records are replayed on
                     top with synthetic ids, so every fact lands in the
                     table exactly once. *)
                  let session =
                    try
                      load_session t ~doc_path ~spec
                        ~graft_upto:ds.Warm_store.ws_wal_lsn
                    with Reply (Protocol.Failed { message; _ }) ->
                      restore_fail "doc_load_failed" "%s" message
                  in
                  let skey = session_key ~doc_path ~query in
                  let entry =
                    {
                      de_key = skey;
                      de_session = session;
                      de_query = query;
                      de_doc_path = doc_path;
                      de_wal_lsn = ds.Warm_store.ws_wal_lsn;
                      de_views = [];
                    }
                  in
                  let ctx = Engine.Session.context session in
                  let views =
                    List.map
                      (fun records ->
                        match Materialized.of_records ctx records with
                        | Error msg ->
                            restore_fail "view_decode_failed" "%s" msg
                        | Ok v -> v)
                      ds.Warm_store.ws_views
                  in
                  (* Replay ingests the snapshot never saw. *)
                  List.iter
                    (fun (lsn, fragment) ->
                      if lsn > entry.de_wal_lsn then begin
                        (match
                           Engine.stage_fragment spec ~fragment
                             ~fact_id:(Engine.synthetic_fact_id ~lsn)
                         with
                        | Engine.Not_a_fact -> ()
                        | Engine.Unsupported reason ->
                            restore_fail "replay_failed" "lsn %d: %s" lsn
                              reason
                        | Engine.Staged staged -> (
                            match
                              Engine.Session.apply_delta session staged ~views
                            with
                            | Error fb ->
                                restore_fail "replay_failed" "lsn %d: %s" lsn
                                  (Format.asprintf "%a" Engine.pp_fallback fb)
                            | Ok _ -> ()));
                        entry.de_wal_lsn <- lsn
                      end)
                    (List.rev (doc_frags t.wal_frags doc_path));
                  let bytes = Engine.Session.table_bytes session in
                  if
                    Cuboid_cache.insert t.cache ~key:(doc_key skey) ~bytes
                      (Doc entry)
                  then begin
                    Metrics.inc t.m_restored_docs;
                    List.iter
                      (fun v ->
                        let vk = view_key skey (Materialized.cuboid_id v) in
                        let vbytes = Materialized.approx_bytes v in
                        if
                          Cuboid_cache.insert t.cache ~key:vk ~bytes:vbytes
                            (View v)
                        then begin
                          entry.de_views <- vk :: entry.de_views;
                          Metrics.inc t.m_restored_views
                        end)
                      views
                  end
                with
                | () -> ()
                | exception Restore_failure (reason, detail) ->
                    Cuboid_cache.remove t.cache
                      (doc_key (session_key ~doc_path ~query));
                    note_restore_failure t ~what:doc_path (reason, detail)
                | exception e ->
                    Cuboid_cache.remove t.cache
                      (doc_key (session_key ~doc_path ~query));
                    note_restore_failure t ~what:doc_path
                      ("doc_load_failed", Printexc.to_string e))
              docs
      end

let () = restore_hook := restore_snapshot

let handle_request t ~rid ~scope ~info = function
  | Protocol.Ping ->
      info.ri_verb <- "ping";
      Protocol.Pong
  | Protocol.Stats ->
      info.ri_verb <- "stats";
      Protocol.Stats_ok (stats_document t)
  | Protocol.Trace { name } -> (
      info.ri_verb <- "trace";
      try handle_trace t ~name with Reply r -> r)
  | Protocol.Shutdown ->
      info.ri_verb <- "shutdown";
      (* [serve_connection] stops the daemon *after* flushing this
         response — stopping here would race process exit against the
         client reading its Bye. *)
      Protocol.Bye
  | Protocol.Cube
      {
        query;
        doc;
        algorithm;
        format;
        no_cache;
        deadline_ms;
        retries;
        request_id = _;
      } -> (
      info.ri_verb <- "cube";
      try
        handle_cube t ~rid ~scope ~info ~query ~doc ~algorithm ~format
          ~no_cache ~deadline_ms ~retries
      with Reply r -> r)
  | Protocol.Ingest { doc; fragment } -> (
      info.ri_verb <- "ingest";
      info.ri_doc <- Some doc;
      try handle_ingest t ~doc ~fragment with Reply r -> r)

(* --- the accept loop ----------------------------------------------------- *)

let sync_cache_counters t =
  (* Hit/miss counters are bumped at their use sites; evictions happen
     behind the server's back (inside cache inserts), so mirror them into
     the registry by delta after each request. *)
  let evictions = ref 0 in
  fun () ->
    locked t.state_lock (fun () ->
        let current = Cuboid_cache.evictions t.cache in
        let delta = current - !evictions in
        if delta > 0 then Metrics.inc ~by:delta t.m_cache_evictions;
        evictions := current;
        refresh_gauges t)

(* Idempotent, signal-handler safe (no locks): flip the running flag and
   close the listening socket — shutdown first, which reliably wakes a
   thread blocked in accept. The drain and cleanup happen on the [run]
   thread's way out. [/readyz] goes false here (one atomic store), so a
   load balancer stops routing to a draining daemon immediately. *)
let stop t =
  if Atomic.compare_and_set t.running true false then begin
    (match t.http with
    | Some ep -> Http_endpoint.set_ready ep false
    | None -> ());
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

(* --- per-request accounting ----------------------------------------------- *)

(* How the cuboids were answered, collapsed to the dominant class: any
   base scan makes it a base request; otherwise any rollup; otherwise it
   was served entirely from cache. *)
let provenance_class (p : Protocol.provenance) =
  if p.p_base > 0 then "base"
  else if p.p_rollup > 0 then "rollup"
  else if p.p_cached > 0 then "cached"
  else "base"

let observe_request_latency t ~info ~response seconds =
  Metrics.observe t.m_lat_request seconds;
  Metrics.observe
    (Metrics.histogram t.registry
       (Metrics.labeled "serve.latency.request" [ ("verb", info.ri_verb) ]))
    seconds;
  match response with
  | Protocol.Cube_ok { provenance; _ } ->
      Metrics.observe
        (Metrics.histogram t.registry
           (Metrics.labeled "serve.latency.cube"
              [ ("provenance", provenance_class provenance) ]))
        seconds
  | _ -> ()

let access_record t ~rid ~info ~response ~ts ~seconds ~bytes =
  let outcome, code =
    match response with
    | Protocol.Failed { code; _ } -> ("error", Some code)
    | Protocol.Cube_ok { partial = Some reason; _ } -> ("partial", Some reason)
    | _ -> ("ok", None)
  in
  Json.Obj
    ([
       ("ts", Json.Float ts);
       ("request_id", Json.Str rid);
       ("verb", Json.Str info.ri_verb);
     ]
    @ (match info.ri_doc with
      | None -> []
      | Some doc ->
          [ ("doc_digest", Json.Str (Digest.to_hex (Digest.string doc))) ])
    @ (match info.ri_provenance with
      | None -> []
      | Some p ->
          [
            ("base", Json.Int p.Protocol.p_base);
            ("rollup", Json.Int p.Protocol.p_rollup);
            ("cached", Json.Int p.Protocol.p_cached);
            ("cells", Json.Int info.ri_cells);
          ])
    @ [
        ("bytes", Json.Int bytes);
        ("reserved_bytes", Json.Int (Cuboid_cache.resident_bytes t.cache));
        ("admission_wait_ms", Json.Float (info.ri_admission_wait *. 1000.));
        ("outcome", Json.Str outcome);
      ]
    @ (match code with None -> [] | Some c -> [ ("code", Json.Str c) ])
    @ [ ("duration_ms", Json.Float (seconds *. 1000.)) ])

let io_deadline t =
  Option.map (fun s -> Unix.gettimeofday () +. s) t.cfg.io_deadline

let serve_connection t sync st fd =
  let reply encoded =
    let w0 = Unix.gettimeofday () in
    match
      Protocol.write_frame ?deadline:(io_deadline t) ?fault:t.fault fd encoded
    with
    | Ok () as ok ->
        Metrics.observe t.m_lat_frame_write (Unix.gettimeofday () -. w0);
        ok
    | Error _ as e -> e
  in
  let rec loop () =
    (* Wait out the connection's idle gap before starting the frame
       clock: the frame-read histogram measures the wire, not the
       client's think time between requests. *)
    match Protocol.wait_readable ?deadline:(io_deadline t) fd with
    | Error Protocol.Timed_out -> Metrics.inc t.m_net_timeouts
    | Error _ -> ()
    | Ok () -> (
        let r0 = Unix.gettimeofday () in
        match
          Protocol.read_frame ~max_bytes:t.cfg.max_frame_bytes
            ?deadline:(io_deadline t) ?fault:t.fault fd
        with
        | Error Protocol.Closed -> ()
        | Error Protocol.Timed_out ->
            (* The slow-loris reap: a peer that cannot deliver one frame
               within the socket deadline is cut loose. No response — the
               stream may be mid-frame, so there is no frame boundary to
               speak at. *)
            Metrics.inc t.m_net_timeouts
        | Error (Protocol.Too_large len) ->
            (* Tell the peer, then hang up — the stream is unrecoverable
               (we have not consumed the oversized payload). *)
            ignore
              (reply
                 (Protocol.encode_response
                    (Protocol.Failed
                       {
                         code = "frame_too_large";
                         message =
                           Printf.sprintf "%d-byte frame over the cap" len;
                       })))
        | Error (Protocol.Frame_fault _) -> ()
        | Ok payload ->
        Metrics.observe t.m_lat_frame_read (Unix.gettimeofday () -. r0);
        st.c_busy <- true;
        Metrics.inc t.m_requests;
        let t0 = Unix.gettimeofday () in
        let decoded = Protocol.decode_request payload in
        (* A client-chosen correlation id wins; otherwise the daemon
           assigns one, so every request's trace and log lines share a
           name either way. *)
        let rid =
          match decoded with
          | Ok (Protocol.Cube { request_id = Some id; _ }) -> id
          | _ ->
              Printf.sprintf "r-%06d" (Atomic.fetch_and_add t.req_ids 1)
        in
        (* A scope per request only when slow-query capture is armed:
           scopes cost ring memory, and without a consumer the spans
           would be dropped unread. *)
        let scope =
          match t.cfg.slow_ms with
          | Some _ -> Some (Trace.make_scope ~ring_size:8192 ~id:rid ())
          | None -> None
        in
        let info = new_req_info () in
        let response =
          match decoded with
          | Error msg ->
              Metrics.inc t.m_errors;
              Protocol.Failed { code = "bad_request"; message = msg }
          | Ok req -> (
              Trace.with_scope_opt scope @@ fun () ->
              Trace.with_span "serve.request"
                ~attrs:[ ("request_id", Trace.Str rid) ]
              @@ fun () ->
              match handle_request t ~rid ~scope ~info req with
              | Protocol.Failed _ as r ->
                  Metrics.inc t.m_errors;
                  r
              | r -> r
              | exception e ->
                  Metrics.inc t.m_errors;
                  Protocol.Failed
                    { code = "internal"; message = Printexc.to_string e })
        in
        let seconds = Unix.gettimeofday () -. t0 in
        observe_request_latency t ~info ~response seconds;
        (* The scope is unbound and every worker joined by now, so the
           dump reads quiescent rings. *)
        (match (scope, t.cfg.slow_ms) with
        | Some scope, Some ms when seconds *. 1000. >= ms ->
            capture_slow t ~rid ~scope ~seconds
        | _ -> ());
        let encoded = Protocol.encode_response response in
        Option.iter
          (fun log ->
            Access_log.write log
              (access_record t ~rid ~info ~response ~ts:t0 ~seconds
                 ~bytes:(String.length encoded)))
          t.access_log;
        sync ();
        let wrote = reply encoded in
        st.c_busy <- false;
        (match response with
        | Protocol.Bye ->
            (* Stop only once the client has its answer (or is provably
               gone): closing the listening socket wakes the accept loop
               and the daemon drains. *)
            stop t
        | _ -> ());
        (match (wrote, response) with
        | Ok (), Protocol.Bye -> ()
        | Ok (), _ ->
            (* A drain in progress wants idle connections gone, not
               re-parked in read_frame. *)
            if Atomic.get t.running then loop ()
        | Error Protocol.Timed_out, _ ->
            (* Slow reader: it asked, but never drained the answer. *)
            Metrics.inc t.m_net_timeouts
        | Error _, _ -> (* dead client; drop the connection *) ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.conn_lock;
      Hashtbl.remove t.conns fd;
      Mutex.unlock t.conn_lock)
    loop

(* --- drained shutdown ----------------------------------------------------- *)

let shutdown_noerr ?(mode = Unix.SHUTDOWN_RECEIVE) fd =
  try Unix.shutdown fd mode with Unix.Unix_error _ -> ()

(* Nudge idle connections: closing their read side makes the parked
   read_frame see EOF, so the thread exits cleanly. Busy connections are
   left alone — their response is what the drain waits for. *)
let shutdown_idle t =
  locked t.conn_lock (fun () ->
      Hashtbl.iter
        (fun _fd st -> if not st.c_busy then shutdown_noerr st.c_fd)
        t.conns)

(* Drain protocol: wait for in-flight requests up to the drain deadline;
   past it, cancel the active compute (its client gets a typed
   cancelled/partial response); past a further grace, sever whatever is
   left so the daemon never hangs on a stuck peer. *)
let drain t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline in
  let hard = deadline +. 2.0 in
  let abandon = hard +. 3.0 in
  shutdown_idle t;
  let rec wait cancelled severed =
    if live_connections t > 0 then begin
      let now = Unix.gettimeofday () in
      if now > abandon then ()
      else begin
        if now > deadline && not cancelled then begin
          Atomic.set t.shutdown_cancel true;
          shutdown_idle t
        end;
        if now > hard && not severed then
          locked t.conn_lock (fun () ->
              Hashtbl.iter
                (fun _fd st -> shutdown_noerr ~mode:Unix.SHUTDOWN_ALL st.c_fd)
                t.conns);
        Thread.delay 0.005;
        wait (cancelled || now > deadline) (severed || now > hard)
      end
    end
  in
  wait false false

let run t =
  let sync = sync_cache_counters t in
  let rec accept_loop backoff =
    if Atomic.get t.running then begin
      match
        (match t.fault with
        | Some f -> ignore (Net_fault.consult f Net_fault.Accept ~bytes:0 : int)
        | None -> ());
        Unix.accept t.listen_fd
      with
      | client_fd, _addr ->
          (* Non-blocking, so reads and writes can honour the socket
             deadline through select instead of stalling in a syscall. *)
          (try Unix.set_nonblock client_fd with Unix.Unix_error _ -> ());
          let st = { c_fd = client_fd; c_busy = false } in
          locked t.conn_lock (fun () -> Hashtbl.replace t.conns client_fd st);
          ignore
            (Thread.create
               (fun () ->
                 try serve_connection t sync st client_fd
                 with _ -> (
                   (try Unix.close client_fd with _ -> ());
                   Mutex.lock t.conn_lock;
                   Hashtbl.remove t.conns client_fd;
                   Mutex.unlock t.conn_lock))
               ());
          accept_loop 0.05
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          accept_loop backoff
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* the listening socket was closed by [stop] *)
          ()
      | exception Unix.Unix_error (e, _, _) ->
          (* Transient accept failure (EMFILE, ENFILE, ENOBUFS, ...):
             shedding the daemon over it would turn a full fd table into
             an outage. Log, back off exponentially, try again. *)
          if Atomic.get t.running then begin
            Metrics.inc t.m_accept_retries;
            Printf.eprintf "x3 serve: accept: %s; retrying in %.2fs\n%!"
              (Unix.error_message e) backoff;
            Thread.delay backoff;
            accept_loop (Float.min 1.0 (backoff *. 2.))
          end
    end
  in
  let finalize () =
    stop t;
    drain t;
    persist_snapshot t;
    Option.iter Http_endpoint.stop t.http;
    Option.iter Access_log.close t.access_log;
    Option.iter Wal.close t.wal;
    match t.cfg.address with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  in
  Fun.protect ~finally:finalize (fun () -> accept_loop 0.05)

(* --- client -------------------------------------------------------------- *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    max_frame : int;
    fault : Net_fault.t option;
  }

  let connect ?(max_frame_bytes = Protocol.default_max_frame_bytes) ?fault
      address =
    let domain, sockaddr =
      match address with
      | Unix_sock path -> (Unix.PF_UNIX, Ok (Unix.ADDR_UNIX path))
      | Tcp (host, port) -> (
          ( Unix.PF_INET,
            match Unix.inet_addr_of_string host with
            | addr -> Ok (Unix.ADDR_INET (addr, port))
            | exception Failure _ -> Error ("bad address: " ^ host) ))
    in
    match sockaddr with
    | Error _ as e -> e
    | Ok sockaddr -> (
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () -> Ok { fd; max_frame = max_frame_bytes; fault }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with _ -> ());
            Error (Unix.error_message e))

  let request ?deadline conn req =
    let abs = Option.map (fun s -> Unix.gettimeofday () +. s) deadline in
    match
      Protocol.write_frame ?deadline:abs ?fault:conn.fault conn.fd
        (Protocol.encode_request req)
    with
    | Error e -> Error (Protocol.frame_error_message e)
    | Ok () -> (
        match
          Protocol.read_frame ~max_bytes:conn.max_frame ?deadline:abs
            ?fault:conn.fault conn.fd
        with
        | Error e -> Error (Protocol.frame_error_message e)
        | Ok payload -> Protocol.decode_response payload)

  let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

  (* splitmix64 jitter, seeded: retry schedules are test inputs too. *)
  let draw state =
    let z = Int64.add !state 0x9E3779B97F4A7C15L in
    state := z;
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

  (* One connection per attempt: the failures worth retrying (connection
     refused while the daemon restarts, Closed from a dropped connection,
     a typed retryable error like "rejected" or "shutting_down") all
     leave the old connection useless. Backoff doubles per attempt with
     jitter in [0.5, 1.5) so a thundering herd of retrying clients
     spreads out. *)
  let request_with_retry ?(retries = 3) ?(backoff = 0.05) ?(seed = 0)
      ?max_frame_bytes ?fault ?deadline address req =
    let state = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
    let attempt_once () =
      match connect ?max_frame_bytes ?fault address with
      | Error _ as e -> e
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> close conn)
            (fun () -> request ?deadline conn req)
    in
    let rec go n delay =
      let result = attempt_once () in
      let retryable =
        match result with
        | Ok (Protocol.Failed { code; _ }) -> Protocol.retryable_error code
        | Ok _ -> false
        | Error _ -> true
      in
      if retryable && n < retries then begin
        Unix.sleepf (delay *. (0.5 +. draw state));
        go (n + 1) (delay *. 2.)
      end
      else result
    in
    go 0 backoff
end
