module Engine = X3_core.Engine
module Governor = X3_core.Governor
module Export = X3_core.Export
module Materialized = X3_core.Materialized
module Lattice = X3_lattice.Lattice
module Json = X3_obs.Json
module Metrics = X3_obs.Metrics
module Obs_export = X3_obs.Export
module Trace = X3_obs.Trace

type address = Unix_sock of string | Tcp of string * int

type config = {
  address : address;
  cache_bytes : int;
  max_in_flight : int;
  max_waiting : int;
  admission_timeout : float option;
  workers : int;
  max_input_bytes : int option;
  max_frame_bytes : int;
}

let default_config address =
  {
    address;
    cache_bytes = 64 * 1024 * 1024;
    max_in_flight = 4;
    max_waiting = 16;
    admission_timeout = None;
    workers = 1;
    max_input_bytes = None;
    max_frame_bytes = Protocol.default_max_frame_bytes;
  }

(* One cache holds both granularities: a [Doc] is a prepared query's
   session (document + witness table + layout, charged at its resident
   table bytes) and a [View] is one materialised cuboid (charged via
   [Materialized.approx_bytes]). Evicting a document takes its views
   with it — they reference its dictionaries, and serving them without
   their session would silently decouple cache content from cache
   accounting. *)
type cached = Doc of doc_entry | View of Materialized.t

and doc_entry = {
  de_key : string;
  de_session : Engine.Session.t;
  mutable de_views : string list;  (* cache keys of this doc's views *)
}

type t = {
  cfg : config;
  registry : Metrics.t;
  door : Governor.Admission.t;
  cache_pool : Governor.t;
  cache_account : Governor.account;
  cache : cached Cuboid_cache.t;
  compute_lock : Mutex.t;
  listen_fd : Unix.file_descr;
  mutable running : bool;
  state_lock : Mutex.t;
  (* metric handles, interned once *)
  m_requests : Metrics.counter;
  m_errors : Metrics.counter;
  m_rejected : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_evictions : Metrics.counter;
  m_cuboids_base : Metrics.counter;
  m_cuboids_rollup : Metrics.counter;
  m_cuboids_cached : Metrics.counter;
  m_docs_loaded : Metrics.counter;
  m_resident : Metrics.gauge;
  m_entries : Metrics.gauge;
  m_lat_request : Metrics.histogram;
  m_lat_compute : Metrics.histogram;
}

(* --- socket plumbing ----------------------------------------------------- *)

let bind_listen address =
  match address with
  | Unix_sock path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64;
         Ok fd
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         Error
           (Printf.sprintf "cannot listen on %s: %s" path
              (Unix.error_message e)))
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | exception Failure _ -> Error ("bad listen address: " ^ host)
      | addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, port));
            Unix.listen fd 64;
            Ok fd
          with Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "cannot listen on %s:%d: %s" host port
                 (Unix.error_message e))))

let create cfg =
  (* A client that dies mid-response turns writes into EPIPE errors we
     handle; without this it would be a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match bind_listen cfg.address with
  | Error _ as e -> e
  | Ok listen_fd ->
      let registry = Metrics.create () in
      let cache_pool = Governor.create ~max_bytes:cfg.cache_bytes () in
      let cache_account = Governor.open_account (Some cache_pool) in
      (* The eviction hook needs the cache itself (a document takes its
         views down with it), so tie the knot through a ref. *)
      let cache_ref = ref None in
      let on_evict _key = function
        | Doc d -> (
            match !cache_ref with
            | Some cache ->
                List.iter (fun vk -> Cuboid_cache.remove cache vk) d.de_views
            | None -> ())
        | View _ -> ()
      in
      let cache = Cuboid_cache.create ~on_evict ~account:cache_account () in
      cache_ref := Some cache;
      let t =
        {
          cfg;
          registry;
          door =
            Governor.Admission.create ~max_in_flight:cfg.max_in_flight
              ~max_waiting:cfg.max_waiting ();
          cache_pool;
          cache_account;
          cache;
          compute_lock = Mutex.create ();
          listen_fd;
          running = true;
          state_lock = Mutex.create ();
          m_requests = Metrics.counter registry "serve.requests.total";
          m_errors = Metrics.counter registry "serve.requests.errors";
          m_rejected = Metrics.counter registry "serve.requests.rejected";
          m_cache_hits = Metrics.counter registry "serve.cache.hits";
          m_cache_misses = Metrics.counter registry "serve.cache.misses";
          m_cache_evictions = Metrics.counter registry "serve.cache.evictions";
          m_cuboids_base = Metrics.counter registry "serve.cuboids.base";
          m_cuboids_rollup = Metrics.counter registry "serve.cuboids.rollup";
          m_cuboids_cached = Metrics.counter registry "serve.cuboids.cached";
          m_docs_loaded = Metrics.counter registry "serve.docs.loaded";
          m_resident = Metrics.gauge registry "serve.cache.resident_bytes";
          m_entries = Metrics.gauge registry "serve.cache.entries";
          m_lat_request = Metrics.histogram registry "serve.latency.request";
          m_lat_compute = Metrics.histogram registry "serve.latency.compute";
        }
      in
      Ok t

let registry t = t.registry

let refresh_gauges t =
  Metrics.set t.m_resident (Cuboid_cache.resident_bytes t.cache);
  Metrics.set t.m_entries (Cuboid_cache.entries t.cache)

let stats_document t =
  refresh_gauges t;
  let meta =
    [
      ("server", Json.Str "x3 serve");
      ("cache_bytes", Json.Int t.cfg.cache_bytes);
      ("cache_used_bytes", Json.Int (Cuboid_cache.resident_bytes t.cache));
      ("max_in_flight", Json.Int t.cfg.max_in_flight);
      ("admitted_total", Json.Int (Governor.Admission.admitted_total t.door));
      ("rejected_total", Json.Int (Governor.Admission.rejected_total t.door));
    ]
  in
  Obs_export.metrics_json ~meta (Metrics.snapshot t.registry)

(* --- loading and serving ------------------------------------------------- *)

let make_pool () =
  X3_storage.Buffer_pool.create ~capacity_pages:65536
    (X3_storage.Disk.in_memory ~page_size:8192 ())

let session_key ~doc_path ~query =
  Digest.to_hex (Digest.string (doc_path ^ "\x00" ^ query))

let view_key skey cid = Printf.sprintf "view:%s:%d" skey cid
let doc_key skey = "doc:" ^ skey

exception Reply of Protocol.response

let fail code fmt =
  Printf.ksprintf (fun message -> raise (Reply (Protocol.Failed { code; message }))) fmt

let check_input_cap t doc_path =
  match t.cfg.max_input_bytes with
  | None -> ()
  | Some cap -> (
      match (Unix.stat doc_path).Unix.st_size with
      | size when size > cap ->
          fail "input_too_large" "%s is %d bytes, over the %d-byte cap"
            doc_path size cap
      | _ -> ()
      | exception Unix.Unix_error _ -> ())

let load_session t ~doc_path ~spec =
  check_input_cap t doc_path;
  match X3_xml.Parser.parse_file_with_dtd doc_path with
  | Error e ->
      fail "bad_document" "%s" (Format.asprintf "%a" X3_xml.Parser.pp_error e)
  | Ok (doc, _dtd) ->
      let store = X3_xdb.Store.of_document doc in
      let prepared = Engine.prepare ~pool:(make_pool ()) ~store spec in
      Metrics.inc t.m_docs_loaded;
      Engine.Session.create ~workers:t.cfg.workers prepared

(* The resident session for (doc, query): served from the cache when
   possible, loaded (and offered to the cache) otherwise. Runs under the
   compute lock. *)
let acquire_session t ~skey ~doc_path ~spec =
  let dkey = doc_key skey in
  match Cuboid_cache.find t.cache dkey with
  | Some (Doc d) ->
      Metrics.inc t.m_cache_hits;
      d
  | Some (View _) ->
      (* Impossible by key construction; treat as a miss. *)
      Cuboid_cache.remove t.cache dkey;
      Metrics.inc t.m_cache_misses;
      let session = load_session t ~doc_path ~spec in
      { de_key = skey; de_session = session; de_views = [] }
  | None ->
      Metrics.inc t.m_cache_misses;
      let session = load_session t ~doc_path ~spec in
      let entry = { de_key = skey; de_session = session; de_views = [] } in
      let bytes = Engine.Session.table_bytes session in
      (* [false] = too big for the whole budget: serve this request from
         the transient session and cache nothing — degraded, not an
         error. *)
      ignore (Cuboid_cache.insert t.cache ~key:dkey ~bytes (Doc entry) : bool);
      entry

(* Answer every cuboid of the lattice, finest first, preferring cached
   views, then rollup from a view this request already holds (soundness
   checked against the observed properties by [Session.rollup]), then a
   base scan. Returns the views in lattice order plus provenance. *)
let serve_cuboids t entry =
  let session = entry.de_session in
  let lattice = Engine.lattice (Engine.Session.prepared session) in
  let order = Lattice.by_degree lattice in
  let obtained = Hashtbl.create (Array.length order) in
  let obtained_order = ref [] in
  let base = ref 0 and rolled = ref 0 and cached = ref 0 in
  let doc_cached = Cuboid_cache.mem t.cache (doc_key entry.de_key) in
  Array.iter
    (fun cid ->
      let vkey = view_key entry.de_key cid in
      let view =
        match Cuboid_cache.find t.cache vkey with
        | Some (View v) ->
            Metrics.inc t.m_cache_hits;
            Metrics.inc t.m_cuboids_cached;
            incr cached;
            v
        | Some (Doc _) | None ->
            Metrics.inc t.m_cache_misses;
            (* Nearest finer view first: the most recently obtained views
               are the highest-degree (most relaxed) ones that are still
               finer than [cid], so the rollup merges the fewest groups. *)
            let from_rollup =
              List.find_map
                (fun finer_cid ->
                  match
                    Engine.Session.rollup session
                      (Hashtbl.find obtained finer_cid)
                      ~coarser:cid
                  with
                  | Ok v -> Some v
                  | Error _ -> None)
                !obtained_order
            in
            let v =
              match from_rollup with
              | Some v ->
                  Metrics.inc t.m_cuboids_rollup;
                  incr rolled;
                  Trace.instant "serve.rollup"
                    ~attrs:[ ("cuboid", Trace.Int cid) ];
                  v
              | None ->
                  Metrics.inc t.m_cuboids_base;
                  incr base;
                  Engine.Session.materialize session ~cuboid:cid
            in
            (* Offer the fresh view to the cache — only while its document
               is resident, so view bytes never outlive their session's
               accounting. *)
            if doc_cached then begin
              let bytes = Materialized.approx_bytes v in
              if Cuboid_cache.insert t.cache ~key:vkey ~bytes (View v) then
                entry.de_views <- vkey :: entry.de_views
            end;
            v
      in
      Hashtbl.replace obtained cid view;
      obtained_order := cid :: !obtained_order)
    order;
  let views =
    Array.to_list (Array.map (fun cid -> Hashtbl.find obtained cid) order)
  in
  ( views,
    { Protocol.p_base = !base; p_rollup = !rolled; p_cached = !cached } )

let export_string ~func ~format result =
  match format with
  | "csv" -> Export.csv_string ~func result
  | "json" -> Export.json_string ~func result
  | other -> fail "bad_format" "unknown format %S (expected csv or json)" other

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let handle_cube t ~query ~doc ~algorithm ~format ~no_cache =
  let compiled =
    match X3_ql.Compile.parse_and_compile query with
    | Ok c -> c
    | Error msg -> fail "bad_query" "%s" msg
  in
  let doc_path = Option.value doc ~default:compiled.X3_ql.Compile.document in
  let spec = compiled.X3_ql.Compile.spec in
  match
    Governor.Admission.admit ?max_wait:t.cfg.admission_timeout t.door
  with
  | Error rejection ->
      Metrics.inc t.m_rejected;
      fail "rejected" "%s"
        (Format.asprintf "%a" Governor.Admission.pp_rejection rejection)
  | Ok () ->
      Fun.protect
        ~finally:(fun () -> Governor.Admission.release t.door)
        (fun () ->
          (* The substrate under a session (buffer pool, context scratch)
             is unsynchronised, so all engine work is serialized; cache
             lookups stay concurrent. *)
          locked t.compute_lock (fun () ->
              let t0 = Unix.gettimeofday () in
              let payload, provenance =
                if no_cache then begin
                  (* The cold reference path: fresh load, fresh compute,
                     no cache reads or writes. *)
                  let alg =
                    match algorithm with
                    | None -> Engine.Counter
                    | Some name -> (
                        match Engine.algorithm_of_string name with
                        | Some a -> a
                        | None -> fail "bad_algorithm" "unknown algorithm %s" name)
                  in
                  let session = load_session t ~doc_path ~spec in
                  let result, _instr =
                    Engine.run ~workers:t.cfg.workers
                      (Engine.Session.prepared session)
                      alg
                  in
                  ( export_string ~func:spec.Engine.func ~format result,
                    { Protocol.p_base = 0; p_rollup = 0; p_cached = 0 } )
                end
                else begin
                  let skey = session_key ~doc_path ~query in
                  let entry = acquire_session t ~skey ~doc_path ~spec in
                  let views, provenance = serve_cuboids t entry in
                  let result =
                    Engine.Session.result_of_views entry.de_session views
                  in
                  (export_string ~func:spec.Engine.func ~format result, provenance)
                end
              in
              let seconds = Unix.gettimeofday () -. t0 in
              Metrics.observe t.m_lat_compute seconds;
              Protocol.Cube_ok { payload; provenance; seconds }))

(* forward declaration pattern: [stop] is defined below but Shutdown
   needs it; thread through a ref to keep the file in reading order. *)
let stop_hook : (t -> unit) ref = ref (fun _ -> ())

let handle_request t = function
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats -> Protocol.Stats_ok (stats_document t)
  | Protocol.Shutdown ->
      (* [serve_connection] stops the daemon *after* flushing this
         response — stopping here would race process exit against the
         client reading its Bye. *)
      Protocol.Bye
  | Protocol.Cube { query; doc; algorithm; format; no_cache } -> (
      try handle_cube t ~query ~doc ~algorithm ~format ~no_cache
      with Reply r -> r)

(* --- the accept loop ----------------------------------------------------- *)

let sync_cache_counters t =
  (* Hit/miss counters are bumped at their use sites; evictions happen
     behind the server's back (inside cache inserts), so mirror them into
     the registry by delta after each request. *)
  let evictions = ref 0 in
  fun () ->
    locked t.state_lock (fun () ->
        let current = Cuboid_cache.evictions t.cache in
        let delta = current - !evictions in
        if delta > 0 then Metrics.inc ~by:delta t.m_cache_evictions;
        evictions := current;
        refresh_gauges t)

let serve_connection t sync fd =
  let rec loop () =
    match Protocol.read_frame ~max_bytes:t.cfg.max_frame_bytes fd with
    | Error Protocol.Closed -> ()
    | Error (Protocol.Too_large len) ->
        (* Tell the peer, then hang up — the stream is unrecoverable (we
           have not consumed the oversized payload). *)
        ignore
          (Protocol.write_frame fd
             (Protocol.encode_response
                (Protocol.Failed
                   {
                     code = "frame_too_large";
                     message = Printf.sprintf "%d-byte frame over the cap" len;
                   })))
    | Error (Protocol.Frame_fault _) -> ()
    | Ok payload ->
        Metrics.inc t.m_requests;
        let t0 = Unix.gettimeofday () in
        let response =
          match Protocol.decode_request payload with
          | Error msg ->
              Metrics.inc t.m_errors;
              Protocol.Failed { code = "bad_request"; message = msg }
          | Ok req -> (
              match handle_request t req with
              | Protocol.Failed _ as r ->
                  Metrics.inc t.m_errors;
                  r
              | r -> r
              | exception e ->
                  Metrics.inc t.m_errors;
                  Protocol.Failed
                    { code = "internal"; message = Printexc.to_string e })
        in
        Metrics.observe t.m_lat_request (Unix.gettimeofday () -. t0);
        sync ();
        let wrote =
          Protocol.write_frame fd (Protocol.encode_response response)
        in
        (match response with
        | Protocol.Bye ->
            (* Stop only once the client has its answer (or is provably
               gone): closing the listening socket wakes the accept loop
               and the daemon exits. *)
            !stop_hook t
        | _ -> ());
        (match (wrote, response) with
        | Ok (), Protocol.Bye -> ()
        | Ok (), _ -> loop ()
        | Error _, _ -> (* dead client; drop the connection *) ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let stop t =
  let was_running =
    locked t.state_lock (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.cfg.address with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let () = stop_hook := stop

let run t =
  let sync = sync_cache_counters t in
  let rec accept_loop () =
    let keep_going = locked t.state_lock (fun () -> t.running) in
    if keep_going then begin
      match Unix.accept t.listen_fd with
      | client_fd, _addr ->
          ignore
            (Thread.create
               (fun () ->
                 try serve_connection t sync client_fd
                 with _ -> ( try Unix.close client_fd with _ -> ()))
               ());
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* the listening socket was closed by [stop] *)
          ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop ()
    end
  in
  Fun.protect ~finally:(fun () -> stop t) accept_loop

(* --- client -------------------------------------------------------------- *)

module Client = struct
  type conn = { fd : Unix.file_descr; max_frame : int }

  let connect ?(max_frame_bytes = Protocol.default_max_frame_bytes) address =
    let domain, sockaddr =
      match address with
      | Unix_sock path -> (Unix.PF_UNIX, Ok (Unix.ADDR_UNIX path))
      | Tcp (host, port) -> (
          ( Unix.PF_INET,
            match Unix.inet_addr_of_string host with
            | addr -> Ok (Unix.ADDR_INET (addr, port))
            | exception Failure _ -> Error ("bad address: " ^ host) ))
    in
    match sockaddr with
    | Error _ as e -> e
    | Ok sockaddr -> (
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () -> Ok { fd; max_frame = max_frame_bytes }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with _ -> ());
            Error (Unix.error_message e))

  let request conn req =
    match Protocol.write_frame conn.fd (Protocol.encode_request req) with
    | Error Protocol.Closed -> Error "connection closed"
    | Error (Protocol.Too_large _) -> Error "request over the frame cap"
    | Error (Protocol.Frame_fault msg) -> Error msg
    | Ok () -> (
        match Protocol.read_frame ~max_bytes:conn.max_frame conn.fd with
        | Error Protocol.Closed -> Error "connection closed"
        | Error (Protocol.Too_large n) ->
            Error (Printf.sprintf "%d-byte response over the frame cap" n)
        | Error (Protocol.Frame_fault msg) -> Error msg
        | Ok payload -> Protocol.decode_response payload)

  let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()
end
