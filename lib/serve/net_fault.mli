(** Deterministic fault injection over socket operations.

    The transport-level sibling of {!X3_storage.Fault}: a plan is a set
    of rules consulted before every socket syscall the protocol layer
    issues, carrying its own op counters so a fresh plan replays
    identically — fault schedules are part of a test's inputs, not its
    environment.

    Injected failures are raised as ordinary [Unix.Unix_error]s, so they
    flow through the same classification as real socket errors: an
    injected [ECONNRESET] surfaces as {!Protocol.frame_error.Closed}, an
    injected [EIO] as [Frame_fault], an injected [EMFILE] on accept
    exercises the server's backoff path.

    Plans are thread-safe: the daemon consults one plan from many
    connection threads and the counters stay globally ordered. *)

type op = Read | Write | Accept

type t

(** {1 Plans} *)

val fail_nth : ?error:Unix.error -> op -> int -> t
(** [fail_nth op n] fails the [n]th occurrence of [op] (1-based) with
    [error] (default [EIO]). *)

val drop_nth : op -> int -> t
(** [fail_nth ~error:ECONNRESET] — the peer vanishing mid-frame. *)

val short_nth : ?bytes:int -> op -> int -> t
(** Truncate the [n]th read/write syscall to [bytes] (default 1),
    forcing the framing layer's partial-op loop to resume. *)

val delay_nth : op -> int -> seconds:float -> t
(** Stall the [n]th occurrence of [op] by [seconds] before it runs. *)

val seeded_delays : seed:int -> rate:float -> seconds:float -> op list -> t
(** Delay each matching op with probability [rate], drawn from a
    splitmix64 stream over [seed] — a deterministic slow network. *)

val crash_after_writes : int -> t
(** After [n] write syscalls have completed, the [n+1]th write and every
    subsequent operation on this plan raise [ECONNRESET] — a connection
    that died mid-stream.  With no short-write rule in force one frame is
    one write syscall, so this is crash-after-N-frames. *)

val combine : t list -> t
(** Merge rules into one plan with fresh counters. *)

(** {1 Consultation} *)

val consult : t -> op -> bytes:int -> int
(** [consult t op ~bytes] registers one imminent syscall: sleeps any
    injected delay, raises [Unix.Unix_error] for an injected failure,
    and returns the byte allowance — [bytes] to proceed untouched, less
    (but at least 1) to force a short op. *)

(** {1 Introspection} *)

val crashed : t -> bool
val injected_faults : t -> int
val writes_seen : t -> int
