(** The resident [x3 serve] daemon.

    A long-lived process keeping prepared queries (document, witness
    table, columnar layout) and computed cuboid views in a byte-budgeted
    LRU cache ({!Cuboid_cache}) charged to a dedicated
    {!X3_core.Governor} account. A requested cuboid is answered, in
    order of preference: directly from the cache; by rolling up a
    cached/finer materialised view when the observed coverage properties
    prove it sound (the lattice-ancestor reuse of §3.6); by a base
    witness-table scan otherwise. Answers are byte-identical to a cold
    [Engine.run] export for COUNT queries — the cache changes latency,
    never bytes.

    Concurrency model: every connection gets a thread; cube requests are
    gated by a {!X3_core.Governor.Admission} door and the engine work is
    serialized under one compute lock (the storage substrate beneath a
    session is unsynchronised). Cache bookkeeping is internally locked,
    so STATS/PING never wait on a running cube.

    Robustness model: accepted sockets are non-blocking and every frame
    read/write runs under [io_deadline] (slow or silent peers are reaped
    without disturbing other connections); the accept loop survives
    transient errors (EMFILE, ENFILE, ...) with logged backoff; {!stop}
    triggers a drained shutdown — stop accepting, let in-flight requests
    finish under [drain_deadline], then cancel the active compute (its
    client gets a typed response) and finally sever stragglers; with
    [snapshot_path] set, the drained daemon persists its cache through
    {!Warm_store} and a restarted daemon warm-starts from whatever still
    verifies. *)

type address = Unix_sock of string | Tcp of string * int

type config = {
  address : address;
  cache_bytes : int;  (** LRU budget for documents + cuboid views *)
  max_in_flight : int;  (** admission door width *)
  max_waiting : int;
  admission_timeout : float option;  (** [None] = wait forever *)
  workers : int;  (** worker domains per cube computation *)
  max_input_bytes : int option;  (** refuse larger XML documents *)
  max_frame_bytes : int;  (** wire-frame payload cap *)
  io_deadline : float option;
      (** per-frame socket deadline in seconds; a peer that cannot
          deliver (or accept) one frame within it is disconnected —
          the slow-loris defense. [None] = wait forever. *)
  drain_deadline : float;
      (** seconds {!stop} waits for in-flight requests before cancelling
          the active compute *)
  snapshot_path : string option;
      (** where the drained daemon persists its cache for warm restart;
          [None] = no snapshot. Corrupt/stale snapshots cold-start,
          never fail. *)
  wal_path : string option;
      (** where ingested fragments are durably logged
          ({!X3_storage.Wal}); [None] disables the [ingest] verb. On
          startup the log is recovered (torn tail truncated) and its
          fragments are grafted into every later document load, so an
          ingest survives any crash after its [Ingest_ok]. *)
  fault : Net_fault.t option;
      (** deterministic socket-fault plan installed on every accepted
          connection's reads/writes and on accept itself — tests only *)
  access_log_path : string option;
      (** JSONL access log, one record per request ({!Access_log});
          [None] disables it *)
  access_log_max_bytes : int;
      (** access-log size cap before single-level rotation to [FILE.1] *)
  prom_port : int option;
      (** loopback HTTP port for [GET /metrics] (Prometheus text),
          [/healthz] and [/readyz] ({!Http_endpoint}); 0 = ephemeral,
          [None] = no endpoint *)
  slow_ms : float option;
      (** requests slower than this run under their own trace scope and,
          past the threshold, have their span tree spooled as a
          Chrome-trace file; [None] disables per-request tracing *)
  trace_dir : string option;
      (** the slow-query capture spool directory (created on first
          capture); [None] disables capture even with [slow_ms] set *)
  trace_cap : int;  (** max spooled captures; oldest deleted beyond it *)
}

val default_config : address -> config
(** 64 MiB cache, 4 in flight, 16 waiting, no admission timeout,
    1 worker, no input cap, {!Protocol.default_max_frame_bytes},
    30 s io deadline, 5 s drain deadline, no snapshot, no WAL, no
    faults, no access log, no scrape endpoint, no slow-query capture
    (16 MiB access-log cap and 32-capture spool when enabled). *)

val build_version : string
(** The version string stamped into [stats_document] meta and the
    [x3_build_info] Prometheus gauge. *)

type t

val create : config -> (t, string) result
(** Bind and listen (unlinking a stale unix-socket path); [Error] on
    bind/listen failure. SIGPIPE is ignored process-wide — a client
    dying mid-response must not kill the daemon. With [snapshot_path]
    set, attempts a warm restore before returning: every document whose
    bytes still match the snapshot's digest is re-parsed and its views
    re-interned; anything that fails verification cold-starts with a
    note to stderr. *)

val registry : t -> X3_obs.Metrics.t
(** The daemon's metrics registry ([serve.cache.*], [serve.latency.*],
    [serve.cuboids.*], [serve.requests.*], [serve.net.*], [wal.*]). *)

val prom_port : t -> int option
(** The bound scrape-endpoint port, when [prom_port] was configured
    (resolves an ephemeral [~port:0] to the kernel's pick). *)

val stats_document : t -> X3_obs.Json.t
(** The x3-metrics/1 document the STATS verb returns (gauges refreshed
    at call time). *)

val run : t -> unit
(** The accept loop: blocks until {!stop} or a SHUTDOWN frame, then
    drains in-flight connections, persists the cache snapshot (when
    configured) and removes the unix socket path. Each connection is
    served on its own thread; dead clients (EOF, EPIPE, oversized or
    malformed frames) terminate their connection only. *)

val stop : t -> unit
(** Begin drained shutdown: stop accepting and wake the accept loop.
    Idempotent, lock-free and async-signal-safe — a SIGTERM/SIGINT
    handler may call it directly. The drain itself runs on the {!run}
    thread's way out. *)

val live_connections : t -> int
(** Currently-registered connection threads — 0 once fully drained. *)

val set_fault : t -> Net_fault.t option -> unit
(** Swap the daemon's socket-fault plan at runtime (tests clear a
    crash-mode plan to prove the daemon recovered). Applies to frames
    and accepts that consult the plan after the swap. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect :
    ?max_frame_bytes:int ->
    ?fault:Net_fault.t ->
    address ->
    (conn, string) result
  (** [fault] installs a deterministic fault plan on this connection's
      own reads/writes (tests of client-side retry). *)

  val request :
    ?deadline:float ->
    conn ->
    Protocol.request ->
    (Protocol.response, string) result
  (** One request/response exchange. [deadline] (seconds, spanning the
      write and the read) turns a stalled server into
      [Error "frame timed out..."] instead of blocking forever. *)

  val close : conn -> unit

  val request_with_retry :
    ?retries:int ->
    ?backoff:float ->
    ?seed:int ->
    ?max_frame_bytes:int ->
    ?fault:Net_fault.t ->
    ?deadline:float ->
    address ->
    Protocol.request ->
    (Protocol.response, string) result
  (** Connect-per-attempt request with jittered exponential backoff:
      retries transport failures (connect refused, dropped connections,
      frame faults) and typed responses whose code satisfies
      {!Protocol.retryable_error} — up to [retries] (default 3) extra
      attempts, sleeping [backoff * 2^attempt * jitter] seconds between
      them (default base 0.05 s, jitter in [0.5, 1.5) drawn from a
      splitmix64 stream seeded by [seed], so schedules are
      reproducible). Non-retryable failures return immediately. *)
end
