(** The resident [x3 serve] daemon.

    A long-lived process keeping prepared queries (document, witness
    table, columnar layout) and computed cuboid views in a byte-budgeted
    LRU cache ({!Cuboid_cache}) charged to a dedicated
    {!X3_core.Governor} account. A requested cuboid is answered, in
    order of preference: directly from the cache; by rolling up a
    cached/finer materialised view when the observed coverage properties
    prove it sound (the lattice-ancestor reuse of §3.6); by a base
    witness-table scan otherwise. Answers are byte-identical to a cold
    [Engine.run] export for COUNT queries — the cache changes latency,
    never bytes.

    Concurrency model: every connection gets a thread; cube requests are
    gated by a {!X3_core.Governor.Admission} door and the engine work is
    serialized under one compute lock (the storage substrate beneath a
    session is unsynchronised). Cache bookkeeping is internally locked,
    so STATS/PING never wait on a running cube. *)

type address = Unix_sock of string | Tcp of string * int

type config = {
  address : address;
  cache_bytes : int;  (** LRU budget for documents + cuboid views *)
  max_in_flight : int;  (** admission door width *)
  max_waiting : int;
  admission_timeout : float option;  (** [None] = wait forever *)
  workers : int;  (** worker domains per cube computation *)
  max_input_bytes : int option;  (** refuse larger XML documents *)
  max_frame_bytes : int;  (** wire-frame payload cap *)
}

val default_config : address -> config
(** 64 MiB cache, 4 in flight, 16 waiting, no admission timeout,
    1 worker, no input cap, {!Protocol.default_max_frame_bytes}. *)

type t

val create : config -> (t, string) result
(** Bind and listen (unlinking a stale unix-socket path); [Error] on
    bind/listen failure. SIGPIPE is ignored process-wide — a client
    dying mid-response must not kill the daemon. *)

val registry : t -> X3_obs.Metrics.t
(** The daemon's metrics registry ([serve.cache.*], [serve.latency.*],
    [serve.cuboids.*], [serve.requests.*]). *)

val stats_document : t -> X3_obs.Json.t
(** The x3-metrics/1 document the STATS verb returns (gauges refreshed
    at call time). *)

val run : t -> unit
(** The accept loop: blocks until {!stop} or a SHUTDOWN frame. Each
    connection is served on its own thread; dead clients (EOF, EPIPE,
    oversized or malformed frames) terminate their connection only. *)

val stop : t -> unit
(** Idempotent; wakes the accept loop and closes the listening socket. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect : ?max_frame_bytes:int -> address -> (conn, string) result
  val request : conn -> Protocol.request -> (Protocol.response, string) result
  val close : conn -> unit
end
