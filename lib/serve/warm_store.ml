(* The serve daemon's warm-restart snapshot: the cuboid cache's index
   (which (document, query) sessions were resident) plus every cached
   Materialized view, packed into one checksummed Snapshot_store file.

   The record stream is:

     'W' magic                       x3-warm/1
     'D' doc record                  query text, document path, MD5 of
                                     the document bytes at save time
     'M' + 'G'* view records        (per view, verbatim from
                                     Materialized.to_records; the 'M'
                                     header carries the 'G' count)
     ... more 'D' groups, in cache LRU order (oldest first)

   A view binds to the 'D' record before it.  The digest is the
   soundness anchor: a restored view is only served if the document
   bytes on disk are exactly the bytes the view was computed from —
   re-interning group keys against a changed document could succeed by
   value coincidence and then answer wrongly.  The loader checks shape
   only; the server checks digests, re-parses documents, and treats any
   failure as a cold start for that document. *)

type doc_snapshot = {
  ws_query : string;
  ws_doc_path : string;
  ws_digest : string;
  ws_wal_lsn : int;
  ws_views : string list list;
}

let magic = "x3-warm/1"

let add_u32 buf v =
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let read_u32 record pos =
  let u8 p = Char.code record.[p] in
  u8 pos lor (u8 (pos + 1) lsl 8) lor (u8 (pos + 2) lsl 16)
  lor (u8 (pos + 3) lsl 24)

let add_lstring buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

(* Returns (string, next_pos). *)
let read_lstring record pos =
  if pos + 4 > String.length record then failwith "warm snapshot: truncated"
  else begin
    let len = read_u32 record pos in
    if pos + 4 + len > String.length record then
      failwith "warm snapshot: truncated string"
    else (String.sub record (pos + 4) len, pos + 4 + len)
  end

let doc_record d =
  let buf = Buffer.create 128 in
  Buffer.add_char buf 'D';
  add_lstring buf d.ws_query;
  add_lstring buf d.ws_doc_path;
  add_lstring buf d.ws_digest;
  (* trailing 8-byte LE WAL high-water: the LSN up to which this
     document's ingested fragments are already folded into the views *)
  for shift = 0 to 7 do
    Buffer.add_char buf (Char.chr ((d.ws_wal_lsn lsr (8 * shift)) land 0xFF))
  done;
  Buffer.contents buf

let parse_doc_record record =
  let query, pos = read_lstring record 1 in
  let doc_path, pos = read_lstring record pos in
  let digest, pos = read_lstring record pos in
  let wal_lsn =
    (* pre-WAL snapshots end at the digest; read them as LSN 0 *)
    if pos = String.length record then 0
    else if pos + 8 = String.length record then begin
      let v = ref 0 in
      for shift = 7 downto 0 do
        v := (!v lsl 8) lor Char.code record.[pos + shift]
      done;
      !v
    end
    else failwith "warm snapshot: doc trailer"
  in
  { ws_query = query; ws_doc_path = doc_path; ws_digest = digest;
    ws_wal_lsn = wal_lsn; ws_views = [] }

let encode docs =
  ("W" ^ magic)
  :: List.concat_map
       (fun d -> doc_record d :: List.concat (List.rev d.ws_views))
       docs

(* Walk the stream statefully: a 'D' opens a document, an 'M' header
   announces how many 'G' records belong to the view that follows. *)
let decode records =
  match records with
  | [] -> Error "warm snapshot: empty"
  | head :: rest when head = "W" ^ magic -> (
      let finish current acc =
        match current with
        | None -> acc
        | Some d -> { d with ws_views = List.rev d.ws_views } :: acc
      in
      match
        let rec go current acc = function
          | [] -> List.rev (finish current acc)
          | record :: rest when String.length record > 0 && record.[0] = 'D'
            ->
              go (Some (parse_doc_record record)) (finish current acc) rest
          | record :: rest
            when String.length record = 9 && record.[0] = 'M' -> (
              match current with
              | None -> failwith "warm snapshot: view before any document"
              | Some d ->
                  let groups = read_u32 record 5 in
                  let rec take n taken = function
                    | rest when n = 0 -> (List.rev taken, rest)
                    | g :: rest
                      when String.length g > 0 && g.[0] = 'G' ->
                        take (n - 1) (g :: taken) rest
                    | _ -> failwith "warm snapshot: truncated view"
                  in
                  let group_records, rest = take groups [] rest in
                  go
                    (Some
                       {
                         d with
                         ws_views = (record :: group_records) :: d.ws_views;
                       })
                    acc rest)
          | _ -> failwith "warm snapshot: unknown record"
        in
        go None [] rest
      with
      | docs -> Ok docs
      | exception Failure msg -> Error msg)
  | _ -> Error "warm snapshot: bad magic"

let save ~path docs = X3_storage.Snapshot_store.save_file path (encode docs)

let load ~path =
  match X3_storage.Snapshot_store.load_file path with
  | Error _ as e -> e
  | Ok records -> decode records
