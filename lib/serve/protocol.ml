module Json = X3_obs.Json

let default_max_frame_bytes = 16 * 1024 * 1024

(* --- framing ------------------------------------------------------------- *)

type frame_error =
  | Closed
  | Too_large of int
  | Timed_out
  | Frame_fault of string

let frame_error_message = function
  | Closed -> "connection closed"
  | Too_large n -> Printf.sprintf "frame of %d bytes over the cap" n
  | Timed_out -> "socket deadline exceeded"
  | Frame_fault m -> m

(* Wait until [fd] is ready, bounded by the absolute [deadline] when one
   is set (select with a negative timeout blocks indefinitely).  EINTR
   restarts the wait against the same absolute deadline. *)
let rec wait_ready fd ~for_read ~deadline =
  let timeout =
    match deadline with None -> -1. | Some d -> d -. Unix.gettimeofday ()
  in
  if deadline <> None && timeout <= 0. then Error Timed_out
  else
    let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
    match Unix.select r w [] timeout with
    | [], [], [] -> Error Timed_out
    | _ -> Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        wait_ready fd ~for_read ~deadline

let wait_readable ?deadline fd = wait_ready fd ~for_read:true ~deadline

let allowance fault op len =
  match fault with None -> len | Some f -> Net_fault.consult f op ~bytes:len

(* EINTR restarts the op; EAGAIN/EWOULDBLOCK (non-blocking fd with an
   empty buffer) waits for readiness — bounded by the deadline — instead
   of the old blind busy-retry; a peer that vanished (EPIPE, ECONNRESET,
   plain EOF) is an orderly [Closed] — the daemon's accept loop must
   shrug at dead clients, not crash on them.  With a deadline set the
   wait happens before the syscall so a blocking fd cannot stall past
   it.  Partial reads and writes resume where they left off, so a slow
   TCP socket (or an injected short op) never corrupts the stream. *)
let rec read_exact ?deadline ?fault fd buf ofs len =
  if len = 0 then Ok ()
  else
    let ready =
      match deadline with
      | None -> Ok ()
      | Some _ -> wait_ready fd ~for_read:true ~deadline
    in
    match ready with
    | Error _ as e -> e
    | Ok () -> (
        match
          let req = allowance fault Net_fault.Read len in
          Unix.read fd buf ofs req
        with
        | 0 -> Error Closed
        | n -> read_exact ?deadline ?fault fd buf (ofs + n) (len - n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            read_exact ?deadline ?fault fd buf ofs len
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> (
            match wait_ready fd ~for_read:true ~deadline with
            | Error _ as e -> e
            | Ok () -> read_exact ?deadline ?fault fd buf ofs len)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            Error Closed
        | exception Unix.Unix_error (e, _, _) ->
            Error (Frame_fault (Unix.error_message e)))

let rec write_exact ?deadline ?fault fd buf ofs len =
  if len = 0 then Ok ()
  else
    let ready =
      match deadline with
      | None -> Ok ()
      | Some _ -> wait_ready fd ~for_read:false ~deadline
    in
    match ready with
    | Error _ as e -> e
    | Ok () -> (
        match
          let req = allowance fault Net_fault.Write len in
          Unix.write fd buf ofs req
        with
        | n -> write_exact ?deadline ?fault fd buf (ofs + n) (len - n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            write_exact ?deadline ?fault fd buf ofs len
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> (
            match wait_ready fd ~for_read:false ~deadline with
            | Error _ as e -> e
            | Ok () -> write_exact ?deadline ?fault fd buf ofs len)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            Error Closed
        | exception Unix.Unix_error (e, _, _) ->
            Error (Frame_fault (Unix.error_message e)))

let read_frame ?(max_bytes = default_max_frame_bytes) ?deadline ?fault fd =
  let header = Bytes.create 4 in
  match read_exact ?deadline ?fault fd header 0 4 with
  | Error _ as e -> e
  | Ok () ->
      let b i = Char.code (Bytes.get header i) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max_bytes then Error (Too_large len)
      else begin
        let payload = Bytes.create len in
        match read_exact ?deadline ?fault fd payload 0 len with
        | Error _ as e -> e
        | Ok () -> Ok (Bytes.unsafe_to_string payload)
      end

let write_frame ?deadline ?fault fd payload =
  let len = String.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set frame 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 frame 4 len;
  write_exact ?deadline ?fault fd frame 0 (4 + len)

(* --- requests ------------------------------------------------------------ *)

type request =
  | Cube of {
      query : string;
      doc : string option;
      algorithm : string option;
      format : string;
      no_cache : bool;
      deadline_ms : int option;
      retries : int option;
      request_id : string option;
    }
  | Ingest of { doc : string; fragment : string }
  | Stats
  | Trace of { name : string option }
  | Ping
  | Shutdown

type provenance = { p_base : int; p_rollup : int; p_cached : int }

type response =
  | Cube_ok of {
      payload : string;
      provenance : provenance;
      seconds : float;
      partial : string option;
      request_id : string option;
    }
  | Ingest_ok of {
      lsn : int;  (** the fragment's WAL sequence number, now durable *)
      sessions : int;  (** resident sessions patched cell-by-cell *)
      cells : int;  (** view cells touched across those sessions *)
      fallbacks : int;  (** sessions flushed for a cold rebuild instead *)
    }
  | Stats_ok of Json.t
  | Trace_ok of Json.t
  | Pong
  | Bye
  | Failed of { code : string; message : string }

(* --- error taxonomy ------------------------------------------------------ *)

(* Wire error codes mirror the CLI's exit codes, so a scripted client
   can treat `x3 serve --query` exactly like `x3 cube`:
     2 = corrupt page/checksum  3 = I/O fault  4 = deadline/cancel
     5 = budget/admission/input caps  1 = everything else. *)
let exit_code_of_error = function
  | "corrupt" -> 2
  | "io_fault" -> 3
  | "timeout" | "cancelled" -> 4
  | "over_budget" | "rejected" | "input_too_large" | "frame_too_large" -> 5
  | _ -> 1

(* Retryable = the same request may succeed on a fresh attempt without
   anything changing on the client side: transient I/O, admission
   overload, a drain that cancelled us, a daemon mid-restart.  A timeout
   against the client's own deadline_ms, a corrupt store, or a budget
   the query simply exceeds will fail identically next time. *)
let retryable_error = function
  | "io_fault" | "rejected" | "cancelled" | "shutting_down" -> true
  | _ -> false

(* --- json ---------------------------------------------------------------- *)

let opt_field name v = match v with None -> [] | Some s -> [ (name, Json.Str s) ]

let opt_int_field name v =
  match v with None -> [] | Some i -> [ (name, Json.Int i) ]

let request_to_json = function
  | Cube
      {
        query;
        doc;
        algorithm;
        format;
        no_cache;
        deadline_ms;
        retries;
        request_id;
      } ->
      Json.Obj
        ([ ("verb", Json.Str "cube"); ("query", Json.Str query) ]
        @ opt_field "doc" doc
        @ opt_field "algorithm" algorithm
        @ [ ("format", Json.Str format); ("no_cache", Json.Bool no_cache) ]
        @ opt_int_field "deadline_ms" deadline_ms
        @ opt_int_field "retries" retries
        @ opt_field "request_id" request_id)
  | Ingest { doc; fragment } ->
      Json.Obj
        [
          ("verb", Json.Str "ingest");
          ("doc", Json.Str doc);
          ("fragment", Json.Str fragment);
        ]
  | Stats -> Json.Obj [ ("verb", Json.Str "stats") ]
  | Trace { name } ->
      Json.Obj ([ ("verb", Json.Str "trace") ] @ opt_field "name" name)
  | Ping -> Json.Obj [ ("verb", Json.Str "ping") ]
  | Shutdown -> Json.Obj [ ("verb", Json.Str "shutdown") ]

let request_of_json j =
  match Json.string_member "verb" j with
  | Some "cube" -> (
      match Json.string_member "query" j with
      | None -> Error "cube request: missing \"query\""
      | Some query ->
          Ok
            (Cube
               {
                 query;
                 doc = Json.string_member "doc" j;
                 algorithm = Json.string_member "algorithm" j;
                 format =
                   Option.value ~default:"csv" (Json.string_member "format" j);
                 no_cache =
                   Option.value ~default:false
                     (Json.bool_member "no_cache" j);
                 deadline_ms = Json.int_member "deadline_ms" j;
                 retries = Json.int_member "retries" j;
                 request_id = Json.string_member "request_id" j;
               }))
  | Some "ingest" -> (
      match
        (Json.string_member "doc" j, Json.string_member "fragment" j)
      with
      | Some doc, Some fragment -> Ok (Ingest { doc; fragment })
      | None, _ -> Error "ingest request: missing \"doc\""
      | _, None -> Error "ingest request: missing \"fragment\"")
  | Some "stats" -> Ok Stats
  | Some "trace" -> Ok (Trace { name = Json.string_member "name" j })
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some other -> Error (Printf.sprintf "unknown verb %S" other)
  | None -> Error "request: missing \"verb\""

let provenance_to_json p =
  Json.Obj
    [
      ("base", Json.Int p.p_base);
      ("rollup", Json.Int p.p_rollup);
      ("cached", Json.Int p.p_cached);
    ]

let provenance_of_json j =
  {
    p_base = Option.value ~default:0 (Json.int_member "base" j);
    p_rollup = Option.value ~default:0 (Json.int_member "rollup" j);
    p_cached = Option.value ~default:0 (Json.int_member "cached" j);
  }

let response_to_json = function
  | Cube_ok { payload; provenance; seconds; partial; request_id } ->
      Json.Obj
        ([
           ("status", Json.Str "ok");
           ("payload", Json.Str payload);
           ("provenance", provenance_to_json provenance);
           ("seconds", Json.Float seconds);
         ]
        @ opt_field "partial" partial
        @ opt_field "request_id" request_id)
  | Ingest_ok { lsn; sessions; cells; fallbacks } ->
      Json.Obj
        [
          ("status", Json.Str "ingested");
          ("lsn", Json.Int lsn);
          ("sessions", Json.Int sessions);
          ("cells", Json.Int cells);
          ("fallbacks", Json.Int fallbacks);
        ]
  | Stats_ok doc ->
      Json.Obj [ ("status", Json.Str "stats"); ("payload", doc) ]
  | Trace_ok doc ->
      Json.Obj [ ("status", Json.Str "trace"); ("payload", doc) ]
  | Pong -> Json.Obj [ ("status", Json.Str "pong") ]
  | Bye -> Json.Obj [ ("status", Json.Str "bye") ]
  | Failed { code; message } ->
      Json.Obj
        [
          ("status", Json.Str "error");
          ("code", Json.Str code);
          ("message", Json.Str message);
        ]

let response_of_json j =
  match Json.string_member "status" j with
  | Some "ok" -> (
      match Json.string_member "payload" j with
      | None -> Error "ok response: missing \"payload\""
      | Some payload ->
          let provenance =
            match Json.member "provenance" j with
            | Some p -> provenance_of_json p
            | None -> { p_base = 0; p_rollup = 0; p_cached = 0 }
          in
          let seconds =
            match Json.member "seconds" j with
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.
          in
          Ok
            (Cube_ok
               {
                 payload;
                 provenance;
                 seconds;
                 partial = Json.string_member "partial" j;
                 request_id = Json.string_member "request_id" j;
               }))
  | Some "ingested" ->
      let int_of name = Option.value ~default:0 (Json.int_member name j) in
      Ok
        (Ingest_ok
           {
             lsn = int_of "lsn";
             sessions = int_of "sessions";
             cells = int_of "cells";
             fallbacks = int_of "fallbacks";
           })
  | Some "stats" -> (
      match Json.member "payload" j with
      | Some doc -> Ok (Stats_ok doc)
      | None -> Error "stats response: missing \"payload\"")
  | Some "trace" -> (
      match Json.member "payload" j with
      | Some doc -> Ok (Trace_ok doc)
      | None -> Error "trace response: missing \"payload\"")
  | Some "pong" -> Ok Pong
  | Some "bye" -> Ok Bye
  | Some "error" ->
      Ok
        (Failed
           {
             code = Option.value ~default:"error" (Json.string_member "code" j);
             message =
               Option.value ~default:"" (Json.string_member "message" j);
           })
  | Some other -> Error (Printf.sprintf "unknown status %S" other)
  | None -> Error "response: missing \"status\""

let encode_request r = Json.to_string ~pretty:false (request_to_json r)
let encode_response r = Json.to_string ~pretty:false (response_to_json r)

let decode s of_json =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j

let decode_request s = decode s request_of_json
let decode_response s = decode s response_of_json
