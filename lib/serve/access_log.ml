(* Structured access log: one JSONL record per request, written off the
   hot path. The request thread only formats the record and enqueues it;
   a dedicated writer thread drains the queue to the file and handles
   size-based rotation. The queue is bounded and a full queue DROPS the
   record (counting the drop) rather than blocking — an access log must
   never become the daemon's slowest component. *)

module Json = X3_obs.Json
module Metrics = X3_obs.Metrics

type t = {
  path : string;
  max_bytes : int;
  queue : string Queue.t;
  queue_cap : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
  mutable writer : Thread.t option;
  m_records : Metrics.counter;
  m_dropped : Metrics.counter;
  m_rotations : Metrics.counter;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- writer thread ------------------------------------------------------- *)

let rotate t =
  (* Single-level rotation: FILE -> FILE.1 (clobbering the previous .1).
     Bounded disk (at most 2 * max_bytes + one record) beats history. *)
  (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
  Metrics.inc t.m_rotations

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* The channel stays open across batches — a request-per-wakeup cadence
   must cost one write + flush, not an open/close round trip — and is
   closed only around rotation (rename wants the file quiescent) and at
   shutdown. *)
let writer_loop t =
  let size = ref (file_size t.path) in
  let oc = ref None in
  let close_channel () =
    match !oc with
    | None -> ()
    | Some ch ->
        (try close_out ch with Sys_error _ -> ());
        oc := None
  in
  let channel () =
    match !oc with
    | Some ch -> Some ch
    | None -> (
        match open_out_gen [ Open_append; Open_creat ] 0o644 t.path with
        | ch ->
            oc := Some ch;
            Some ch
        | exception Sys_error _ -> None)
  in
  let running = ref true in
  while !running do
    let batch, stop =
      with_lock t (fun () ->
          while Queue.is_empty t.queue && not t.closed do
            Condition.wait t.cond t.lock
          done;
          let batch = Queue.fold (fun acc l -> l :: acc) [] t.queue in
          Queue.clear t.queue;
          (List.rev batch, t.closed))
    in
    if batch <> [] then begin
      if !size >= t.max_bytes then begin
        close_channel ();
        rotate t;
        size := 0
      end;
      match channel () with
      | Some ch -> (
          match
            List.iter
              (fun line ->
                output_string ch line;
                output_char ch '\n';
                size := !size + String.length line + 1)
              batch;
            flush ch
          with
          | () -> ()
          | exception Sys_error _ ->
              (* An unwritable log never takes the daemon down; the
                 records are lost but counted. *)
              close_channel ();
              Metrics.inc ~by:(List.length batch) t.m_dropped)
      | None -> Metrics.inc ~by:(List.length batch) t.m_dropped
    end;
    if stop then running := false
  done;
  close_channel ()

(* --- api ----------------------------------------------------------------- *)

let default_max_bytes = 16 * 1024 * 1024
let default_queue_cap = 1024

let create ?(max_bytes = default_max_bytes) ?(queue_cap = default_queue_cap)
    ~metrics path =
  let t =
    {
      path;
      max_bytes = max 1 max_bytes;
      queue = Queue.create ();
      queue_cap = max 1 queue_cap;
      lock = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      writer = None;
      m_records = Metrics.counter metrics "serve.access_log.records";
      m_dropped = Metrics.counter metrics "serve.access_log.dropped";
      m_rotations = Metrics.counter metrics "serve.access_log.rotations";
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t

let write t record =
  let line = Json.to_string ~pretty:false record in
  let accepted =
    with_lock t (fun () ->
        if t.closed || Queue.length t.queue >= t.queue_cap then false
        else begin
          Queue.push line t.queue;
          Condition.signal t.cond;
          true
        end)
  in
  if accepted then Metrics.inc t.m_records else Metrics.inc t.m_dropped

let close t =
  let writer =
    with_lock t (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          Condition.signal t.cond;
          t.writer
        end)
  in
  match writer with None -> () | Some th -> Thread.join th

let path t = t.path
