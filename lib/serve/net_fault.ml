(* Deterministic fault injection over socket operations.

   The PR 3 storage injector made every disk failure a replayable test
   input; this is the same design one layer up, at the transport.  A plan
   is a set of rules consulted before every socket syscall the protocol
   layer issues (read, write, accept): fail the Nth op with a chosen
   errno, truncate the Nth op to a short read/write, delay the Nth op,
   inject seeded pseudo-random delays, or "crash" — after the Nth write
   every subsequent operation on the plan raises [ECONNRESET], modelling
   a connection (or NIC) that died mid-stream.

   Injected failures are raised as ordinary [Unix.Unix_error]s so they
   flow through exactly the same classification as real socket errors:
   an injected ECONNRESET becomes [Protocol.Closed], an injected EIO
   becomes [Frame_fault], an injected EMFILE exercises the accept loop's
   backoff path.  Plans carry their own op counters (guarded by a mutex —
   the daemon consults one plan from many connection threads), so a
   fresh plan replays identically. *)

type op = Read | Write | Accept

let op_name = function Read -> "read" | Write -> "write" | Accept -> "accept"

type rule =
  | Fail_nth of { op : op; n : int; error : Unix.error }
  | Short_nth of { op : op; n : int; bytes : int }
  | Delay_nth of { op : op; n : int; seconds : float }
  | Seeded_delay of {
      ops : op list;
      rate : float;
      seconds : float;
      mutable state : int64;
    }
  | Crash_after_writes of { n : int }

type t = {
  rules : rule list;
  lock : Mutex.t;
  mutable reads : int;
  mutable writes : int;
  mutable accepts : int;
  mutable crashed : bool;
  mutable injected : int;
}

let of_rules rules =
  {
    rules;
    lock = Mutex.create ();
    reads = 0;
    writes = 0;
    accepts = 0;
    crashed = false;
    injected = 0;
  }

let fail_nth ?(error = Unix.EIO) op n =
  if n < 1 then invalid_arg "Net_fault.fail_nth: n must be >= 1";
  of_rules [ Fail_nth { op; n; error } ]

let drop_nth op n = fail_nth ~error:Unix.ECONNRESET op n

let short_nth ?(bytes = 1) op n =
  if n < 1 then invalid_arg "Net_fault.short_nth: n must be >= 1";
  if bytes < 1 then invalid_arg "Net_fault.short_nth: bytes must be >= 1";
  if op = Accept then invalid_arg "Net_fault.short_nth: accept cannot be short";
  of_rules [ Short_nth { op; n; bytes } ]

let delay_nth op n ~seconds =
  if n < 1 then invalid_arg "Net_fault.delay_nth: n must be >= 1";
  of_rules [ Delay_nth { op; n; seconds } ]

let seeded_delays ~seed ~rate ~seconds ops =
  if rate < 0. || rate > 1. then
    invalid_arg "Net_fault.seeded_delays: rate in [0,1]";
  of_rules
    [
      Seeded_delay
        { ops; rate; seconds; state = Int64.of_int (seed lxor 0x9E3779B9) };
    ]

let crash_after_writes n =
  if n < 0 then invalid_arg "Net_fault.crash_after_writes: n must be >= 0";
  of_rules [ Crash_after_writes { n } ]

let combine plans = of_rules (List.concat_map (fun p -> p.rules) plans)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let crashed t = locked t (fun () -> t.crashed)
let injected_faults t = locked t (fun () -> t.injected)
let writes_seen t = locked t (fun () -> t.writes)

(* splitmix64, as in Fault.draw: one draw per matching event, fully
   determined by the seed and the event sequence. *)
let draw st =
  let z = Int64.add st.contents 0x9E3779B97F4A7C15L in
  st := z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let inject t error op =
  t.injected <- t.injected + 1;
  raise (Unix.Unix_error (error, "x3-net-fault", op_name op))

(* Consult the plan for one imminent syscall.  Sleeps any injected delay
   (outside the plan lock), raises [Unix.Unix_error] for injected
   failures, and returns the byte allowance for the op: [bytes] to
   proceed untouched, less to force a short read/write.  [bytes = 0]
   (accept) always returns 0. *)
let consult t op ~bytes =
  let delay = ref 0. in
  let allow =
    locked t @@ fun () ->
    if t.crashed then inject t Unix.ECONNRESET op;
    let count =
      match op with
      | Read ->
          t.reads <- t.reads + 1;
          t.reads
      | Write ->
          t.writes <- t.writes + 1;
          t.writes
      | Accept ->
          t.accepts <- t.accepts + 1;
          t.accepts
    in
    let allow = ref bytes in
    List.iter
      (fun rule ->
        match rule with
        | Fail_nth { op = o; n; error } ->
            if o = op && count = n then inject t error op
        | Short_nth { op = o; n; bytes = b } ->
            if o = op && count = n then allow := min !allow (max 1 b)
        | Delay_nth { op = o; n; seconds } ->
            if o = op && count = n then delay := !delay +. seconds
        | Seeded_delay s ->
            if List.mem op s.ops then begin
              let st = ref s.state in
              let x = draw st in
              s.state <- !st;
              if x < s.rate then delay := !delay +. s.seconds
            end
        | Crash_after_writes { n } ->
            if op = Write && t.writes = n + 1 then begin
              (* The crashing write: the connection dies under it and
                 under everything after it. *)
              t.crashed <- true;
              inject t Unix.ECONNRESET op
            end)
      t.rules;
    !allow
  in
  if !delay > 0. then Unix.sleepf !delay;
  allow
