(** The serve daemon's warm-restart snapshot file.

    On drained shutdown the daemon packs its cuboid-cache index — which
    (document, query) sessions were resident, in LRU order — and every
    cached {!X3_core.Materialized} view into one checksummed
    {!X3_storage.Snapshot_store} file; on restart it restores whatever
    still verifies and serves the rest cold.

    The soundness rule: a restored view may only be served against
    document bytes {e identical} to the bytes it was computed from, so
    each document carries the MD5 digest taken at save time.  This
    module checks stream shape only (checksums are the store's job,
    digests and re-parsing the server's); every failure is an [Error],
    never an exception — snapshot loss is a cold start, not a fault. *)

type doc_snapshot = {
  ws_query : string;  (** X^3 query text, compiled again on restore *)
  ws_doc_path : string;  (** resolved document path at save time *)
  ws_digest : string;  (** [Digest.file ws_doc_path] at save time *)
  ws_wal_lsn : int;
      (** ingest-WAL high-water folded into the views at save time; the
          restorer replays WAL records with greater LSNs on top
          (pre-WAL snapshot files decode as 0) *)
  ws_views : string list list;
      (** per cached view, its {!X3_core.Materialized.to_records}
          stream, in cache LRU order *)
}

val save : path:string -> doc_snapshot list -> (unit, string) result
(** Atomic (write-beside, rename-into-place) via
    {!X3_storage.Snapshot_store.save_file}. *)

val load : path:string -> (doc_snapshot list, string) result
(** Verify-on-load via {!X3_storage.Snapshot_store.load_file}; [Error]
    on a missing file, any checksum failure, or a malformed stream. *)

(**/**)

val encode : doc_snapshot list -> string list
val decode : string list -> (doc_snapshot list, string) result
