(** Summarizability properties over the lattice (§3.2, §3.7).

    Two per-lattice-point facts drive every optimisation in §3:

    - {e disjointness} of a cuboid: no fact contributes more than one
      representative witness row (equivalently: no present axis repeats),
      so a fact sits in exactly one group and group aggregates may count
      rows instead of tracking fact identities;
    - {e coverage} of a lattice edge (finer cuboid → one-step more relaxed
      cuboid): every (fact, group) incidence of the coarser cuboid is
      already present in the finer one, so the coarser aggregate may be
      rolled up from the finer aggregate without touching base data.

    [infer] derives both from a schema, conservatively (unknown ⇒ property
    assumed absent, which only costs performance, never correctness).
    [observe] measures the ground truth on a witness table — used by tests
    to validate [infer]'s soundness and by the workload generators to
    certify their six experimental settings. *)

type t

val infer :
  schema:X3_xml.Schema.t -> fact_tag:string -> Lattice.t -> t
(** Schema-driven inference (§3.7): an axis repeats if some step of its
    (state-relaxed) path is repeatable; a binding can be absent if some
    step is optional; a structural relaxation step preserves coverage only
    if the schema proves it adds no matches (e.g. every path to the leaf
    already goes through its pattern parent). *)

val none : Lattice.t -> t
(** No schema knowledge: every property absent. *)

val exact : Lattice.t -> disjoint:bool -> covered:bool -> t
(** Uniform properties asserted a priori — used by workloads whose
    construction guarantees them. *)

val observe : X3_pattern.Witness.t -> Lattice.t -> t
(** Ground truth measured on a materialised witness table. *)

val restrict : t -> Lattice.t -> X3_pattern.Witness.row list list -> t
(** AND newly appended fact blocks into previously observed truth. Every
    observed property is a monotone per-fact-block conjunction (one more
    block can falsify disjointness or coverage, never restore it), so
    [restrict (observe table l) l blocks] equals observing the table with
    the blocks appended — the delta-maintenance path's property refresh
    without a rescan. Each element of [blocks] must be the complete,
    contiguous row list of one appended fact. *)

val cuboid_disjoint : t -> int -> bool
(** The paper's notion: no fact occurs in more than one group of the
    cuboid, i.e. no {e present} axis repeats (repeats on LND-removed axes
    are collapsed by representative rows). Licenses the customised
    variants' id-free aggregation and finer-to-coarser roll-up. *)

val cuboid_strictly_disjoint : t -> int -> bool
(** The stronger condition the blindly-optimised variants (BUCOPT, TDOPT,
    TDOPTALL) actually assume when they count raw witness rows: no axis of
    the cube — present {e or} removed — repeats, so the materialised table
    holds exactly one qualifying row per fact. Implies
    {!cuboid_disjoint}. *)

val edge_covered : t -> finer:int -> coarser:int -> bool
(** [finer] must be a lattice child of [coarser]. *)

val all_disjoint : t -> bool
val all_strictly_disjoint : t -> bool
val all_covered : t -> bool

val axis_multiplicity :
  schema:X3_xml.Schema.t ->
  fact_tag:string ->
  X3_pattern.Axis.t ->
  state:int ->
  X3_xml.Dtd.multiplicity
(** The per-axis schema fact underlying [infer], exposed for testing and
    for the schema-advisor example: can a binding at this structural state
    be absent, and can it repeat, within one fact? *)

val pp_report : Lattice.t -> Format.formatter -> t -> unit
(** Human-readable per-cuboid and per-edge report. *)
