(** The X³ relaxed-cube lattice (§2.3, Fig. 3).

    Nodes are cuboids; a directed edge goes from a cuboid to each one-step
    relaxation of it. Cuboids are addressed by dense integer ids so that
    algorithms can keep per-cuboid state in arrays. For Query 1 (axes with
    relaxations [{LND,SP,PC-AD}], [{LND,PC-AD}], [{LND}]) the lattice has
    5 × 3 × 2 = 30 cuboids. *)

type t

val max_size : int
(** The hard cuboid-count cap, [2^20]. The per-axis relaxation sets make
    the lattice a product — without a cap, a hostile query with a few
    dozen axes is an exponential hang (and a naive size product silently
    overflows). *)

val cardinality : X3_pattern.Axis.t array -> int option
(** Overflow-safe cuboid count of these axes' lattice; [None] when it
    would exceed {!max_size}. *)

val build : X3_pattern.Axis.t array -> t
(** Enumerates the full product lattice. Raises [Invalid_argument] beyond
    {!max_size} cuboids — cube dimensionality in the paper tops out at 7
    axes. *)

val build_checked :
  X3_pattern.Axis.t array ->
  (t, [ `Too_large of int * int ]) result
(** {!build} with the cap as a typed error: [`Too_large (axes, max_size)]
    instead of an exception — the front door for untrusted queries. *)

val axes : t -> X3_pattern.Axis.t array
val size : t -> int

val cuboid : t -> int -> Cuboid.t
val id : t -> Cuboid.t -> int
(** Raises [Not_found] for a cuboid not in the lattice. *)

val rigid_id : t -> int
(** The least relaxed cuboid (the query's tree pattern itself). *)

val most_relaxed_id : t -> int

val parents : t -> int -> int list
(** One-step more relaxed cuboids. *)

val children : t -> int -> int list
(** One-step less relaxed cuboids (the "adjacent less relaxed cuboids" of
    the coverage property). *)

val degree : t -> int -> int

val by_degree : t -> int array
(** All cuboid ids ordered from least relaxed (rigid first) to most
    relaxed — a topological order of the relaxation DAG. Top-down
    algorithms walk it forwards, bottom-up algorithms backwards. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Fold over cuboid ids in [by_degree] order. *)

val pp : Format.formatter -> t -> unit
