module Axis = X3_pattern.Axis
module Relax = X3_pattern.Relax
module Witness = X3_pattern.Witness
module Schema = X3_xml.Schema
module Dtd = X3_xml.Dtd
module Sj = X3_xdb.Structural_join

type t = {
  disjoint : bool array;  (** per cuboid id, the paper's notion *)
  strict : bool array;  (** per cuboid id, raw-row-counting safety *)
  covered : (int * int, bool) Hashtbl.t;  (** (finer, coarser) edge *)
}

let cuboid_disjoint t i = t.disjoint.(i)
let cuboid_strictly_disjoint t i = t.strict.(i)

let edge_covered t ~finer ~coarser =
  match Hashtbl.find_opt t.covered (finer, coarser) with
  | Some b -> b
  | None -> invalid_arg "Properties.edge_covered: not a lattice edge"

let all_disjoint t = Array.for_all Fun.id t.disjoint
let all_strictly_disjoint t = Array.for_all Fun.id t.strict

let all_covered t =
  Hashtbl.fold (fun _ covered acc -> acc && covered) t.covered true

let uniform lattice ~disjoint ~covered =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      List.iter
        (fun p -> Hashtbl.replace table (c, p) covered)
        (Lattice.parents lattice c))
    (Lattice.by_degree lattice)
  |> ignore;
  {
    disjoint = Array.make (Lattice.size lattice) disjoint;
    strict = Array.make (Lattice.size lattice) disjoint;
    covered = table;
  }

let none lattice = uniform lattice ~disjoint:false ~covered:false
let exact lattice ~disjoint ~covered = uniform lattice ~disjoint ~covered

(* --- schema inference -------------------------------------------------- *)

let combine a b =
  {
    Dtd.may_be_absent = a.Dtd.may_be_absent || b.Dtd.may_be_absent;
    may_repeat = a.Dtd.may_repeat || b.Dtd.may_repeat;
  }

let step_multiplicity schema ~from_tag ~pc_ad step =
  let child = step.Axis.tag in
  match (if pc_ad then Sj.Descendant else step.Axis.axis) with
  | Sj.Child -> Schema.child_multiplicity schema ~parent:from_tag ~child
  | Sj.Descendant ->
      Schema.descendant_multiplicity schema ~ancestor:from_tag ~target:child

let chain_multiplicity schema ~from_tag ~pc_ad steps =
  let _, acc =
    List.fold_left
      (fun (cur, acc) step ->
        let m = step_multiplicity schema ~from_tag:cur ~pc_ad step in
        (step.Axis.tag, combine acc m))
      (from_tag, { Dtd.may_be_absent = false; may_repeat = false })
      steps
  in
  acc

let axis_multiplicity ~schema ~fact_tag axis ~state =
  let pc_ad = Axis.mask_applies axis ~mask:state Relax.Pc_ad in
  let sp = Axis.mask_applies axis ~mask:state Relax.Sp in
  if not sp then chain_multiplicity schema ~from_tag:fact_tag ~pc_ad axis.Axis.steps
  else begin
    match List.rev axis.Axis.steps with
    | leaf :: parent :: prefix_rev ->
        let prefix = List.rev prefix_rev in
        let grandparent_tag =
          match prefix_rev with s :: _ -> s.Axis.tag | [] -> fact_tag
        in
        let chain =
          chain_multiplicity schema ~from_tag:fact_tag ~pc_ad
            (prefix @ [ parent ])
        in
        let promoted =
          Schema.descendant_multiplicity schema ~ancestor:grandparent_tag
            ~target:leaf.Axis.tag
        in
        combine chain promoted
    | _ -> chain_multiplicity schema ~from_tag:fact_tag ~pc_ad axis.Axis.steps
  end

(* No indirect occurrence: [child] appears under [parent] only as a direct
   child — generalising the edge to descendant adds no matches. *)
let only_direct schema ~parent ~child =
  not
    (List.exists
       (fun x -> Schema.reachable schema ~from_:x ~target:child)
       (Schema.children schema parent))

(* Does relaxing axis [state -> state'] (adding relaxation [added]) keep the
   axis's match set unchanged according to the schema? *)
let structural_step_covered schema ~fact_tag axis ~state ~added =
  let pc_ad_before = Axis.mask_applies axis ~mask:state Relax.Pc_ad in
  let sp_before = Axis.mask_applies axis ~mask:state Relax.Sp in
  match added with
  | Relax.Lnd -> assert false
  | Relax.Pc_ad ->
      (* Every Child edge of the effective pattern at [state] must admit no
         indirect occurrence. With SP applied, the promoted leaf's edge is
         already descendant; only the remaining chain matters. *)
      let steps =
        if sp_before then
          match List.rev axis.Axis.steps with
          | _leaf :: parent :: prefix_rev -> List.rev (parent :: prefix_rev)
          | _ -> axis.Axis.steps
        else axis.Axis.steps
      in
      let rec check cur = function
        | [] -> true
        | step :: rest ->
            let ok =
              match step.Axis.axis with
              | Sj.Descendant -> true
              | Sj.Child ->
                  (not pc_ad_before)
                  && only_direct schema ~parent:cur ~child:step.Axis.tag
                  || pc_ad_before
            in
            ok && check step.Axis.tag rest
      in
      (* If PC-AD was already applied nothing changes (vacuous step). *)
      pc_ad_before || check fact_tag steps
  | Relax.Sp -> (
      match List.rev axis.Axis.steps with
      | leaf :: parent :: prefix_rev ->
          let grandparent_tag =
            match prefix_rev with s :: _ -> s.Axis.tag | [] -> fact_tag
          in
          (* Promotion adds no matches iff every occurrence of the leaf
             under the grandparent goes through the pattern parent, and
             the original leaf edge already admitted those occurrences. *)
          let via_ok =
            Schema.always_via schema ~from_:grandparent_tag
              ~target:leaf.Axis.tag ~via:parent.Axis.tag
          in
          let leaf_edge_ok =
            match leaf.Axis.axis with
            | Sj.Descendant -> true
            | Sj.Child ->
                pc_ad_before
                || only_direct schema ~parent:parent.Axis.tag
                     ~child:leaf.Axis.tag
          in
          via_ok && leaf_edge_ok
      | _ -> false)

let infer ~schema ~fact_tag lattice =
  let axes = Lattice.axes lattice in
  let size = Lattice.size lattice in
  (* Memoise the per-(axis, state) multiplicities. *)
  let multiplicity =
    Array.map
      (fun axis ->
        let table = Hashtbl.create 8 in
        List.iter
          (fun state ->
            Hashtbl.replace table state
              (axis_multiplicity ~schema ~fact_tag axis ~state))
          (Axis.states axis);
        table)
      axes
  in
  let state_repeat ai state =
    (Hashtbl.find multiplicity.(ai) state).Dtd.may_repeat
  in
  let state_absent ai state =
    (Hashtbl.find multiplicity.(ai) state).Dtd.may_be_absent
  in
  (* Removed axes cannot break disjointness: the representative-row
     semantics collapses their repeated bindings (one representative per
     fact per present-axis combination). Only a repeatable *present* axis
     puts a fact into several groups — §3.7's "every lattice point that
     includes author". *)
  let disjoint = Array.make size false in
  let strict = Array.make size false in
  Array.iter
    (fun i ->
      let c = Lattice.cuboid lattice i in
      let ok = ref true and strictly = ref true in
      Array.iteri
        (fun ai state ->
          match state with
          | State.Present m ->
              if state_repeat ai m then begin
                ok := false;
                strictly := false
              end
          | State.Removed ->
              (* A repeatable removed axis leaves several qualifying rows
                 per fact in the materialised table: representative rows
                 absorb them (paper disjointness unaffected), raw row
                 counting does not. *)
              if state_repeat ai (Axis.full_mask axes.(ai)) then
                strictly := false)
        c;
      disjoint.(i) <- !ok;
      strict.(i) <- !strictly)
    (Lattice.by_degree lattice);
  let covered = Hashtbl.create 64 in
  Array.iter
    (fun ci ->
      let c = Lattice.cuboid lattice ci in
      List.iter
        (fun pi ->
          let p = Lattice.cuboid lattice pi in
          (* Find the axis where the edge relaxes. *)
          let edge_ok = ref true in
          Array.iteri
            (fun ai cs ->
              let ps = p.(ai) in
              if not (State.equal cs ps) then begin
                match (cs, ps) with
                | State.Present m, State.Removed ->
                    if state_absent ai m then edge_ok := false
                | State.Present m, State.Present m' ->
                    let added_bits = m' land lnot m in
                    let added = Axis.kinds_of_mask axes.(ai) added_bits in
                    List.iter
                      (fun kind ->
                        if
                          not
                            (structural_step_covered schema ~fact_tag
                               axes.(ai) ~state:m ~added:kind)
                        then edge_ok := false)
                      added
                | State.Removed, _ -> edge_ok := false
              end)
            c;
          Hashtbl.replace covered (ci, pi) !edge_ok)
        (Lattice.parents lattice ci))
    (Lattice.by_degree lattice);
  { disjoint; strict; covered }

(* --- empirical observation --------------------------------------------- *)

(* Group identity as dictionary ids — string-free, ids are per-axis. *)
let key_of_row cuboid row =
  let parts = ref [] in
  Array.iteri
    (fun ai state ->
      match state with
      | State.Removed -> ()
      | State.Present _ ->
          let id = row.Witness.cells.(ai).Witness.id in
          assert (id >= 0);
          parts := id :: !parts)
    cuboid;
  List.rev !parts

(* Representative-row semantics, mirrored from Context.row_represents (the
   lattice library sits below the core and cannot depend on it). *)
let row_represents cuboid row =
  let ok = ref true in
  Array.iteri
    (fun ai state ->
      match state with
      | State.Removed ->
          if not row.Witness.cells.(ai).Witness.first then ok := false
      | State.Present m ->
          if not (Witness.qualifies row ~axis_index:ai ~state:m) then
            ok := false)
    cuboid;
  !ok

(* Validity-only qualification: what raw row counting sees. *)
let row_qualifies cuboid row =
  let ok = ref true in
  Array.iteri
    (fun ai state ->
      match state with
      | State.Removed -> ()
      | State.Present m ->
          if not (Witness.qualifies row ~axis_index:ai ~state:m) then
            ok := false)
    cuboid;
  !ok

(* The observed properties are all monotone per-fact-block ANDs: one more
   fact block can only falsify disjointness, strictness or coverage, never
   restore them. [observe_blocks] folds any block source into a property
   record, so a delta-maintenance path can observe just the appended
   blocks and AND them into the previously observed truth ({!restrict})
   instead of rescanning the table. *)
let observe_blocks iter_blocks lattice ~disjoint ~strict ~covered =
  let size = Lattice.size lattice in
  let edges = ref [] in
  Array.iter
    (fun ci ->
      List.iter
        (fun pi -> edges := (ci, pi) :: !edges)
        (Lattice.parents lattice ci))
    (Lattice.by_degree lattice);
  let cuboids = Array.init size (Lattice.cuboid lattice) in
  iter_blocks
    (fun block ->
      (* Paper disjointness: at most one representative row per fact and
         cuboid. Strict disjointness: at most one qualifying row. *)
      Array.iteri
        (fun i cuboid ->
          if disjoint.(i) then begin
            let representing =
              List.length (List.filter (row_represents cuboid) block)
            in
            if representing > 1 then disjoint.(i) <- false
          end;
          if strict.(i) then begin
            let qualifying =
              List.length (List.filter (row_qualifies cuboid) block)
            in
            if qualifying > 1 then strict.(i) <- false
          end)
        cuboids;
      (* Coverage: the fact's group keys in the coarser cuboid must all be
         reachable by projecting its keys in the finer cuboid. *)
      List.iter
        (fun (ci, pi) ->
          if Hashtbl.find covered (ci, pi) then begin
            let c = cuboids.(ci) and p = cuboids.(pi) in
            let coarser_keys =
              List.filter_map
                (fun row ->
                  if row_represents p row then Some (key_of_row p row)
                  else None)
                block
            in
            if coarser_keys <> [] then begin
              let finer_projected =
                List.filter_map
                  (fun row ->
                    if row_represents c row then Some (key_of_row p row)
                    else None)
                  block
              in
              let missing =
                List.exists
                  (fun key -> not (List.mem key finer_projected))
                  coarser_keys
              in
              if missing then Hashtbl.replace covered (ci, pi) false
            end
          end)
        !edges);
  { disjoint; strict; covered }

let observe table lattice =
  let size = Lattice.size lattice in
  let covered = Hashtbl.create 64 in
  Array.iter
    (fun ci ->
      List.iter
        (fun pi -> Hashtbl.replace covered (ci, pi) true)
        (Lattice.parents lattice ci))
    (Lattice.by_degree lattice);
  observe_blocks
    (fun f -> Witness.iter_fact_blocks f table)
    lattice
    ~disjoint:(Array.make size true)
    ~strict:(Array.make size true)
    ~covered

let restrict t lattice blocks =
  let disjoint = Array.copy t.disjoint in
  let strict = Array.copy t.strict in
  let covered = Hashtbl.copy t.covered in
  observe_blocks
    (fun f -> List.iter f blocks)
    lattice ~disjoint ~strict ~covered

let pp_report lattice ppf t =
  let axes = Lattice.axes lattice in
  Array.iter
    (fun i ->
      Format.fprintf ppf "%3d %-50s disjoint=%b@." i
        (Cuboid.to_string axes (Lattice.cuboid lattice i))
        t.disjoint.(i);
      List.iter
        (fun p ->
          Format.fprintf ppf "      -> %-44s covered=%b@."
            (Cuboid.to_string axes (Lattice.cuboid lattice p))
            (Hashtbl.find t.covered (i, p)))
        (Lattice.parents lattice i))
    (Lattice.by_degree lattice)
