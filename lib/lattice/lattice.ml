module Axis = X3_pattern.Axis

type t = {
  axes : Axis.t array;
  cuboids : Cuboid.t array;
  ids : (Cuboid.t, int) Hashtbl.t;
  parents : int list array;
  children : int list array;
  by_degree : int array;
}

let max_size = 1 lsl 20

(* Overflow-safe product of per-axis state counts: each axis multiplies
   the cuboid count by up to 5, so 30 axes already overflow a naive
   product on 32-bit-ish arithmetic and wrap to nonsense. [None] means
   "over [max_size]" — the caller never learns a wrapped number. *)
let cardinality axes =
  let over = ref false in
  let acc = ref 1 in
  Array.iter
    (fun axis ->
      let n = List.length (State.all axis) in
      if n > 0 then begin
        if !acc > max_size / n then over := true;
        if not !over then acc := !acc * n
      end)
    axes;
  if !over then None else Some !acc

let build axes =
  let state_lists = Array.map State.all axes in
  let size =
    match cardinality axes with
    | Some size -> size
    | None ->
        invalid_arg
          (Printf.sprintf
             "Lattice.build: the relaxation lattice of these %d axes \
              exceeds the %d-cuboid limit"
             (Array.length axes) max_size)
  in
  (* Enumerate the product, first axis slowest. *)
  let cuboids = Array.make size [||] in
  let rec fill prefix i base span =
    if i >= Array.length axes then
      cuboids.(base) <- Array.of_list (List.rev prefix)
    else begin
      let states = state_lists.(i) in
      let n = List.length states in
      let child_span = span / n in
      List.iteri
        (fun j s ->
          fill (s :: prefix) (i + 1) (base + (j * child_span)) child_span)
        states
    end
  in
  fill [] 0 0 size;
  let ids = Hashtbl.create (2 * size) in
  Array.iteri (fun i c -> Hashtbl.replace ids c i) cuboids;
  let parents = Array.make size [] in
  let children = Array.make size [] in
  Array.iteri
    (fun i c ->
      let succ = Cuboid.successors c axes in
      let succ_ids = List.map (Hashtbl.find ids) succ in
      parents.(i) <- succ_ids;
      List.iter (fun p -> children.(p) <- i :: children.(p)) succ_ids)
    cuboids;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  let by_degree = Array.init size Fun.id in
  let degree_of i = Cuboid.degree cuboids.(i) axes in
  Array.sort
    (fun a b ->
      let c = Int.compare (degree_of a) (degree_of b) in
      if c <> 0 then c else Cuboid.compare cuboids.(a) cuboids.(b))
    by_degree;
  { axes; cuboids; ids; parents; children; by_degree }

let build_checked axes =
  match cardinality axes with
  | Some _ -> Ok (build axes)
  | None -> Error (`Too_large (Array.length axes, max_size))

let axes t = t.axes
let size t = Array.length t.cuboids
let cuboid t i = t.cuboids.(i)
let id t c = Hashtbl.find t.ids c
let rigid_id t = id t (Cuboid.rigid t.axes)
let most_relaxed_id t = id t (Cuboid.most_relaxed t.axes)
let parents t i = t.parents.(i)
let children t i = t.children.(i)
let degree t i = Cuboid.degree t.cuboids.(i) t.axes
let by_degree t = Array.copy t.by_degree

let fold f init t =
  Array.fold_left (fun acc i -> f acc i) init t.by_degree

let pp ppf t =
  Array.iter
    (fun i ->
      Format.fprintf ppf "%3d %d %s@." i (degree t i)
        (Cuboid.to_string t.axes t.cuboids.(i)))
    t.by_degree
