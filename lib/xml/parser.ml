type error = { line : int; column : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "XML parse error at %d:%d: %s" e.line e.column e.message

(* Hostile-input limits. [element] recurses through [content], so an
   unbounded document depth is an unbounded native stack — a crafted
   100k-deep document would kill the process with Stack_overflow before
   any typed error could be produced. The limits turn every such resource
   exhaustion into an ordinary parse error. *)
type limits = {
  max_depth : int;
  max_nodes : int;
  max_attr_len : int;
  max_text_len : int;
}

let default_limits =
  {
    max_depth = 10_000;
    max_nodes = 50_000_000;
    max_attr_len = 1_000_000;
    max_text_len = 50_000_000;
  }

exception Fail of int * string
(* position, message — positions are turned into line/column on exit *)

type state = {
  src : string;
  mutable pos : int;
  limits : limits;
  mutable depth : int;
  mutable nodes : int;
}

let fail st msg = raise (Fail (st.pos, msg))

let count_node st =
  st.nodes <- st.nodes + 1;
  if st.nodes > st.limits.max_nodes then
    fail st
      (Printf.sprintf "document exceeds the %d-node limit" st.limits.max_nodes)
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1
let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80 (* permissive for UTF-8 names *)

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Resolves [&...;] starting at the '&'. *)
let reference st =
  expect st "&";
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' || peek st = 'X' in
    if hex then advance st;
    let start = st.pos in
    let is_digit c =
      if hex then
        (c >= '0' && c <= '9')
        || (c >= 'a' && c <= 'f')
        || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while is_digit (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "character reference out of range"
    in
    match Escape.utf8_of_code_point code with
    | s -> s
    | exception Invalid_argument _ ->
        fail st (Printf.sprintf "invalid character reference &#%s;" digits)
  end
  else begin
    let n = name st in
    expect st ";";
    match Escape.resolve_entity n with
    | Some s -> s
    | None -> fail st (Printf.sprintf "undefined entity &%s;" n)
  end

let attribute_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if Buffer.length buf > st.limits.max_attr_len then
      fail st
        (Printf.sprintf "attribute value exceeds the %d-byte limit"
           st.limits.max_attr_len)
    else if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (reference st);
      loop ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let attributes st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let attr_name = name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let attr_value = attribute_value st in
      loop ({ Tree.attr_name; attr_value } :: acc)
    end
    else List.rev acc
  in
  loop []

let comment st =
  expect st "<!--";
  match Str_search.find st.src ~start:st.pos "-->" with
  | Some i ->
      let body = String.sub st.src st.pos (i - st.pos) in
      st.pos <- i + 3;
      Tree.Comment body
  | None -> fail st "unterminated comment"

let cdata st =
  expect st "<![CDATA[";
  match Str_search.find st.src ~start:st.pos "]]>" with
  | Some i ->
      if i - st.pos > st.limits.max_text_len then
        fail st
          (Printf.sprintf "CDATA section exceeds the %d-byte limit"
             st.limits.max_text_len);
      let body = String.sub st.src st.pos (i - st.pos) in
      st.pos <- i + 3;
      Tree.Text body
  | None -> fail st "unterminated CDATA section"

let processing_instruction st =
  expect st "<?";
  let target = name st in
  skip_space st;
  match Str_search.find st.src ~start:st.pos "?>" with
  | Some i ->
      let body = String.sub st.src st.pos (i - st.pos) in
      st.pos <- i + 2;
      (target, body)
  | None -> fail st "unterminated processing instruction"

(* Character data up to the next markup; coalesced into one Text node. *)
let char_data st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if Buffer.length buf > st.limits.max_text_len then
      fail st
        (Printf.sprintf "text node exceeds the %d-byte limit"
           st.limits.max_text_len)
    else if eof st || peek st = '<' then ()
    else if peek st = '&' then begin
      Buffer.add_string buf (reference st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let rec element st =
  expect st "<";
  st.depth <- st.depth + 1;
  if st.depth > st.limits.max_depth then
    fail st
      (Printf.sprintf "document exceeds the %d-level nesting limit"
         st.limits.max_depth);
  count_node st;
  let tag = name st in
  let attrs = attributes st in
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    st.depth <- st.depth - 1;
    { Tree.name = tag; attributes = attrs; children = [] }
  end
  else begin
    expect st ">";
    let children = content st in
    expect st "</";
    let closing = name st in
    if not (String.equal closing tag) then
      fail st
        (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
    skip_space st;
    expect st ">";
    st.depth <- st.depth - 1;
    { Tree.name = tag; attributes = attrs; children }
  end

and content st =
  let rec loop acc =
    if eof st then List.rev acc
    else if looking_at st "</" then List.rev acc
    else if looking_at st "<!--" then begin
      count_node st;
      loop (comment st :: acc)
    end
    else if looking_at st "<![CDATA[" then begin
      count_node st;
      loop (cdata st :: acc)
    end
    else if looking_at st "<?" then begin
      count_node st;
      let target, body = processing_instruction st in
      loop (Tree.Pi (target, body) :: acc)
    end
    else if peek st = '<' then loop (Tree.Element (element st) :: acc)
    else begin
      let data = char_data st in
      if String.length data = 0 then List.rev acc
      else begin
        count_node st;
        loop (Tree.Text data :: acc)
      end
    end
  in
  loop []

(* <?xml version="1.0" encoding="..."?> *)
let xml_declaration st =
  if
    looking_at st "<?xml"
    && st.pos + 5 < String.length st.src
    && is_space st.src.[st.pos + 5]
  then begin
    let _, body = processing_instruction st in
    let find_pseudo_attr key =
      (* version="1.0" inside the declaration body *)
      match Str_search.find body ~start:0 key with
      | None -> None
      | Some i -> (
          let rest = String.sub body i (String.length body - i) in
          match String.index_opt rest '"' with
          | None -> (
              match String.index_opt rest '\'' with
              | None -> None
              | Some q -> (
                  let tail =
                    String.sub rest (q + 1) (String.length rest - q - 1)
                  in
                  match String.index_opt tail '\'' with
                  | None -> None
                  | Some e -> Some (String.sub tail 0 e)))
          | Some q -> (
              let tail = String.sub rest (q + 1) (String.length rest - q - 1) in
              match String.index_opt tail '"' with
              | None -> None
              | Some e -> Some (String.sub tail 0 e)))
    in
    (find_pseudo_attr "version", find_pseudo_attr "encoding")
  end
  else (None, None)

(* <!DOCTYPE root SYSTEM "..."> or <!DOCTYPE root [ subset ]> *)
let doctype st =
  if not (looking_at st "<!DOCTYPE") then (None, None, None)
  else begin
    expect st "<!DOCTYPE";
    skip_space st;
    let root = name st in
    skip_space st;
    (* External id: SYSTEM "..." | PUBLIC "..." "..." — the system literal
       is kept so file-based parsing can resolve it. *)
    let system_id =
      if looking_at st "SYSTEM" then begin
        expect st "SYSTEM";
        skip_space st;
        Some (attribute_value st)
      end
      else if looking_at st "PUBLIC" then begin
        expect st "PUBLIC";
        skip_space st;
        ignore (attribute_value st);
        skip_space st;
        Some (attribute_value st)
      end
      else None
    in
    skip_space st;
    let subset =
      if peek st = '[' then begin
        advance st;
        match String.index_from_opt st.src st.pos ']' with
        | Some i ->
            let body = String.sub st.src st.pos (i - st.pos) in
            st.pos <- i + 1;
            Some body
        | None -> fail st "unterminated DOCTYPE internal subset"
      end
      else None
    in
    skip_space st;
    expect st ">";
    (Some root, system_id, subset)
  end

let misc st =
  (* Comments, PIs and whitespace allowed around the root element. *)
  let rec loop () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (comment st);
      loop ()
    end
    else if looking_at st "<?" then begin
      ignore (processing_instruction st);
      loop ()
    end
  in
  loop ()

let position_of_offset src pos =
  let line = ref 1 and column = ref 1 in
  for i = 0 to min pos (String.length src) - 1 do
    if src.[i] = '\n' then begin
      incr line;
      column := 1
    end
    else incr column
  done;
  (!line, !column)

let run ?(limits = default_limits) src f =
  let st = { src; pos = 0; limits; depth = 0; nodes = 0 } in
  match f st with
  | v -> Ok v
  | exception Fail (pos, message) ->
      let line, column = position_of_offset src pos in
      Error { line; column; message }

let parse_document st =
  let version, encoding = xml_declaration st in
  misc st;
  let declared_root, system_id, subset = doctype st in
  misc st;
  if not (peek st = '<' && is_name_start (peek2 st)) then
    fail st "expected the root element";
  let root = element st in
  misc st;
  if not (eof st) then fail st "trailing content after the root element";
  let dtd =
    match subset with
    | None -> None
    | Some body -> (
        match Dtd.parse ?declared_root body with
        | Ok d -> Some d
        | Error msg -> fail st msg)
  in
  ({ Tree.version; encoding; doctype = declared_root; root }, dtd, system_id)

let parse_with_dtd ?limits src =
  Result.map
    (fun (doc, dtd, _system) -> (doc, dtd))
    (run ?limits src parse_document)

let parse ?limits src = Result.map fst (parse_with_dtd ?limits src)

let parse_fragment ?limits src =
  run ?limits src (fun st ->
      let nodes = content st in
      if not (eof st) then fail st "unexpected closing tag";
      nodes)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Resolve a SYSTEM identifier relative to the document's directory. Only
   plain relative or absolute file paths are supported (no URLs). *)
let resolve_external_dtd ~document_path ~system_id =
  let candidate =
    if Filename.is_relative system_id then
      Filename.concat (Filename.dirname document_path) system_id
    else system_id
  in
  if not (Sys.file_exists candidate) then None
  else begin
    match Dtd.parse (read_file candidate) with
    | Ok dtd -> Some dtd
    | Error _ | (exception Sys_error _) -> None
  end

let parse_file_with_dtd ?limits path =
  match read_file path with
  | src -> (
      match run ?limits src parse_document with
      | Error _ as e -> e
      | Ok (doc, dtd, system_id) ->
          (* The internal subset wins; otherwise try the external one. *)
          let dtd =
            match (dtd, system_id) with
            | Some dtd, _ -> Some dtd
            | None, Some system_id ->
                Option.map
                  (fun external_dtd ->
                    { external_dtd with Dtd.declared_root = doc.Tree.doctype })
                  (resolve_external_dtd ~document_path:path ~system_id)
            | None, None -> None
          in
          Ok (doc, dtd))
  | exception Sys_error msg -> Error { line = 0; column = 0; message = msg }

let parse_file ?limits path = Result.map fst (parse_file_with_dtd ?limits path)
