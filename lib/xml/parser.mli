(** A non-validating XML 1.0 parser.

    Hand-written recursive descent over an in-memory string. Supports
    elements, attributes (single- or double-quoted), character data, CDATA
    sections, comments, processing instructions, the XML declaration, the
    five predefined entities, decimal/hexadecimal character references, and
    DOCTYPE declarations with an internal subset (handed to {!Dtd.parse}).

    Not supported (documented limitations, irrelevant to the X³ workloads):
    external DTD subsets are recorded but not fetched; user-defined general
    entities raise an error; namespaces are not interpreted (prefixed names
    are kept verbatim). *)

type error = { line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** {1 Hostile-input limits}

    The parser recurses on element nesting, so depth is native stack; node
    count, attribute and text lengths are heap. All four are bounded so a
    crafted input produces a typed {!error} instead of [Stack_overflow] or
    [Out_of_memory]. *)

type limits = {
  max_depth : int;  (** element nesting levels (recursion depth) *)
  max_nodes : int;  (** total tree nodes (elements, texts, comments, PIs) *)
  max_attr_len : int;  (** bytes in one attribute value *)
  max_text_len : int;  (** bytes in one text node / CDATA section *)
}

val default_limits : limits
(** 10k depth, 50M nodes, 1MB attributes, 50MB text nodes — far beyond any
    legitimate workload, well short of resource exhaustion. *)

val parse : ?limits:limits -> string -> (Tree.document, error) result
(** Parse a complete document. *)

val parse_with_dtd :
  ?limits:limits -> string -> (Tree.document * Dtd.t option, error) result
(** Like {!parse}, also returning the parsed internal DTD subset when the
    document carries one. *)

val parse_fragment : ?limits:limits -> string -> (Tree.node list, error) result
(** Parse mixed content without requiring a single root element — handy in
    tests and for building documents from snippets. *)

val parse_file : ?limits:limits -> string -> (Tree.document, error) result
(** [parse_file path] reads and parses [path]. I/O errors are reported as a
    parse error at line 0. *)

val parse_file_with_dtd :
  ?limits:limits -> string -> (Tree.document * Dtd.t option, error) result
